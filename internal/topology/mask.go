package topology

import (
	"fmt"
	"sort"
)

// Masked returns a degraded view of the network in which the given
// processors and links have failed. The view keeps the full processor id
// space and the full link id table (so routes and metrics arrays keep
// their indices), but failed links — and every link incident to a failed
// processor — disappear from the adjacency structure: Neighbors, Degree,
// LinkBetween, NextHops, and RouteEndpoints all answer as if the dead
// hardware were unplugged, and Distance falls back to BFS over the live
// subgraph (returning -1 between disconnected live processors).
//
// Masking an already-degraded view unions the failures, which is how
// incremental repair layers successive faults onto one machine.
func (nw *Network) Masked(failedProcs, failedLinks []int) (*Network, error) {
	m := &Network{
		Kind:     nw.Kind,
		Name:     nw.Name,
		N:        nw.N,
		Dims:     nw.Dims,
		links:    nw.links,
		linkID:   nw.linkID,
		degraded: true,
		deadProc: make([]bool, nw.N),
		deadLink: make([]bool, len(nw.links)),
		adj:      make([][]int, nw.N),
	}
	if !nw.degraded {
		m.Name = nw.Name + "/degraded"
	}
	// Union any failures already present in this view.
	for p, dead := range nw.deadProc {
		m.deadProc[p] = dead
	}
	for l, dead := range nw.deadLink {
		m.deadLink[l] = dead
	}
	for _, p := range failedProcs {
		if p < 0 || p >= nw.N {
			return nil, fmt.Errorf("topology: failed processor %d out of range 0..%d", p, nw.N-1)
		}
		m.deadProc[p] = true
	}
	for _, l := range failedLinks {
		if l < 0 || l >= len(nw.links) {
			return nil, fmt.Errorf("topology: failed link %d out of range 0..%d", l, len(nw.links)-1)
		}
		m.deadLink[l] = true
	}
	for _, l := range nw.links {
		if m.deadProc[l.A] || m.deadProc[l.B] {
			m.deadLink[l.ID] = true
		}
	}
	for _, l := range nw.links {
		if m.deadLink[l.ID] {
			continue
		}
		m.adj[l.A] = append(m.adj[l.A], l.B)
		m.adj[l.B] = append(m.adj[l.B], l.A)
	}
	for _, a := range m.adj {
		sort.Ints(a)
	}
	m.buildAdjLink()
	return m, nil
}

// Degraded reports whether this network is a masked view with failures.
func (nw *Network) Degraded() bool { return nw.degraded }

// Alive reports whether processor v has not failed.
func (nw *Network) Alive(v int) bool {
	return nw.deadProc == nil || !nw.deadProc[v]
}

// LinkAlive reports whether link id has not failed (directly or through a
// failed endpoint processor).
func (nw *Network) LinkAlive(id int) bool {
	return nw.deadLink == nil || !nw.deadLink[id]
}

// NumLive returns the number of live processors.
func (nw *Network) NumLive() int {
	if nw.deadProc == nil {
		return nw.N
	}
	live := 0
	for _, dead := range nw.deadProc {
		if !dead {
			live++
		}
	}
	return live
}

// FailedProcessors returns the sorted failed processor ids of this view.
func (nw *Network) FailedProcessors() []int {
	var out []int
	for p, dead := range nw.deadProc {
		if dead {
			out = append(out, p)
		}
	}
	return out
}

// FailedLinks returns the sorted failed link ids of this view, including
// links dead only through a failed endpoint.
func (nw *Network) FailedLinks() []int {
	var out []int
	for l, dead := range nw.deadLink {
		if dead {
			out = append(out, l)
		}
	}
	return out
}
