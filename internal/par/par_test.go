package par

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3); got != 1 {
		t.Fatalf("Resolve(-3) = %d, want 1", got)
	}
	for _, n := range []int{1, 2, 7, 64} {
		if got := Resolve(n); got != n {
			t.Fatalf("Resolve(%d) = %d", n, got)
		}
	}
}

func TestForEachRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		n := 1000
		hits := make([]atomic.Int32, n)
		err := ForEach(context.Background(), workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		err := ForEach(context.Background(), workers, 100, func(i int) error {
			if i == 13 || i == 77 {
				return fmt.Errorf("boom at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "boom at 13" {
			t.Fatalf("workers=%d: got %v, want the lowest-index error", workers, err)
		}
	}
}

func TestForEachErrorDoesNotSkipLaterIndices(t *testing.T) {
	for _, workers := range []int{2, 4} {
		n := 64
		ran := make([]atomic.Bool, n)
		_ = ForEach(context.Background(), workers, n, func(i int) error {
			ran[i].Store(true)
			if i == 0 {
				return errors.New("early failure")
			}
			return nil
		})
		for i := range ran {
			if !ran[i].Load() {
				t.Fatalf("workers=%d: index %d skipped after an earlier error", workers, i)
			}
		}
	}
}

func TestForEachHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		err := ForEach(ctx, workers, 50, func(i int) error { return nil })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
	}
}

func TestForEachRepanicsDeterministically(t *testing.T) {
	for _, workers := range []int{2, 8} {
		func() {
			defer func() {
				r := recover()
				if r != "par: contained panic: panic at 5" {
					t.Fatalf("workers=%d: recovered %v, want the lowest-index panic", workers, r)
				}
			}()
			_ = ForEach(context.Background(), workers, 40, func(i int) error {
				if i == 5 || i == 23 {
					panic(fmt.Sprintf("panic at %d", i))
				}
				return nil
			})
			t.Fatalf("workers=%d: ForEach returned instead of panicking", workers)
		}()
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
}

func TestSortMatchesSequentialAtEveryWorkerCount(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	n := 50_000
	base := make([]int64, n)
	for i := range base {
		base[i] = r.Int63n(1 << 40)
	}
	// Break ties into a strict total order by pairing value with index.
	type kv struct {
		v   int64
		idx int
	}
	mk := func() []kv {
		s := make([]kv, n)
		for i, v := range base {
			s[i] = kv{v, i}
		}
		return s
	}
	less := func(a, b kv) bool {
		if a.v != b.v {
			return a.v < b.v
		}
		return a.idx < b.idx
	}
	want := mk()
	Sort(1, want, less)
	for _, workers := range []int{2, 3, 4, 16} {
		got := mk()
		Sort(workers, got, less)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: element %d differs: got %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestSortSmallSlices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 17} {
		s := make([]int, n)
		for i := range s {
			s[i] = n - i
		}
		Sort(8, s, func(a, b int) bool { return a < b })
		for i := 1; i < n; i++ {
			if s[i-1] > s[i] {
				t.Fatalf("n=%d: not sorted at %d: %v", n, i, s)
			}
		}
	}
}
