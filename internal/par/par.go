// Package par is the execution layer behind MAPPER's Parallelism budget:
// a bounded fork-join worker pool whose results merge in a deterministic
// order, so every computation built on it produces bit-identical output
// (check.Fingerprint equality) at any worker count.
//
// The determinism contract rests on three rules, which every caller must
// follow:
//
//   - Work items write only to their own index's slot (no shared
//     accumulators inside the parallel region); the caller merges slots
//     sequentially, in index order, after ForEach returns.
//   - Every index runs even when an earlier index fails, and the error
//     ForEach returns is always the lowest-index one — never "whichever
//     worker lost the race".
//   - Sort requires a strict total order, so its output is the unique
//     sorted permutation regardless of how the input was chunked.
package par

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"slices"
)

// Resolve maps a user-facing Parallelism budget to a concrete worker
// count: 0 means "auto" (GOMAXPROCS), anything below 1 clamps to 1
// (sequential), and positive values pass through. Public entry points
// validate negative budgets with a typed error before reaching this
// defensive clamp.
func Resolve(n int) int {
	if n == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		return 1
	}
	return n
}

// panicError carries a recovered panic from a worker goroutine back to
// the calling goroutine, where it is re-raised (as a "par: contained
// panic: ..." message) so the pipeline's panic-containment layer
// (core.safeStage) still sees a panic from the failing stage.
type panicError struct{ value interface{} }

func (p panicError) Error() string { return fmt.Sprintf("par: contained panic: %v", p.value) }

// ForEach runs fn(0..n-1) on at most workers goroutines and blocks until
// every index has run. Indices are claimed from an atomic counter, so
// scheduling is nondeterministic — which is why fn must confine its
// writes to per-index slots.
//
// Error policy: an error does not cancel the remaining indices (their
// slots stay comparable across worker counts); the returned error is the
// one from the lowest failing index. Context cancellation is the
// exception: once ctx is done, unclaimed indices fail with ctx.Err()
// without running fn. A panic inside fn is captured and re-panicked on
// the calling goroutine as a "par: contained panic: ..." message, again
// picking the lowest panicking index.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				if first == nil {
					first = err
				}
				break
			}
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				errs[i] = protect(fn, i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if pe, ok := err.(panicError); ok {
			panic(fmt.Sprintf("par: contained panic: %v", pe.value))
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// protect runs fn(i), converting a panic into a panicError so it can be
// re-raised deterministically on the caller's goroutine.
func protect(fn func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = panicError{value: r}
		}
	}()
	return fn(i)
}

// Sort sorts s in place using at most workers goroutines. less MUST be a
// strict total order (no two distinct elements compare equal in both
// directions): under that contract the sorted slice is unique, so the
// output is bit-identical whether the sort ran on one worker or many.
func Sort[T any](workers int, s []T, less func(a, b T) bool) {
	cmp := func(a, b T) int {
		switch {
		case less(a, b):
			return -1
		case less(b, a):
			return 1
		default:
			return 0
		}
	}
	const minChunk = 1024
	if workers > len(s)/minChunk {
		workers = len(s) / minChunk
	}
	if workers <= 1 {
		slices.SortFunc(s, cmp)
		return
	}
	// Chunk-sort in parallel, then merge pairwise. The merge is stable
	// across chunkings because less is a strict total order.
	chunk := (len(s) + workers - 1) / workers
	bounds := make([][2]int, 0, workers)
	for lo := 0; lo < len(s); lo += chunk {
		hi := lo + chunk
		if hi > len(s) {
			hi = len(s)
		}
		bounds = append(bounds, [2]int{lo, hi})
	}
	_ = ForEach(context.Background(), workers, len(bounds), func(i int) error {
		slices.SortFunc(s[bounds[i][0]:bounds[i][1]], cmp)
		return nil
	})
	buf := make([]T, len(s))
	for len(bounds) > 1 {
		var merged [][2]int
		for i := 0; i < len(bounds); i += 2 {
			if i+1 == len(bounds) {
				merged = append(merged, bounds[i])
				continue
			}
			lo, mid, hi := bounds[i][0], bounds[i][1], bounds[i+1][1]
			mergeRuns(s, buf, lo, mid, hi, less)
			merged = append(merged, [2]int{lo, hi})
		}
		bounds = merged
	}
}

// mergeRuns merges the sorted runs s[lo:mid] and s[mid:hi] through buf.
func mergeRuns[T any](s, buf []T, lo, mid, hi int, less func(a, b T) bool) {
	i, j, k := lo, mid, lo
	for i < mid && j < hi {
		if less(s[j], s[i]) {
			buf[k] = s[j]
			j++
		} else {
			buf[k] = s[i]
			i++
		}
		k++
	}
	copy(buf[k:], s[i:mid])
	k += mid - i
	copy(buf[k:], s[j:hi])
	copy(s[lo:hi], buf[lo:hi])
}
