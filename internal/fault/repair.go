package fault

import (
	"fmt"
	"sort"

	"oregami/internal/mapping"
	"oregami/internal/metrics"
	"oregami/internal/route"
	"oregami/internal/topology"
)

// Migration records one cluster evacuated off a failed processor.
type Migration struct {
	// Cluster is the cluster id in the pre-repair mapping.
	Cluster int
	// Tasks are the member tasks that moved.
	Tasks []int
	// From is the failed processor; To is where the tasks now run.
	From, To int
	// Merged is true when no free live processor remained and the
	// cluster was absorbed into the cluster already resident on To.
	Merged bool
}

// RepairReport is METRICS' account of one repair: what failed, which
// tasks moved where, which phases were rerouted, and the metric deltas.
type RepairReport struct {
	FailedProcessors []int
	FailedLinks      []int
	Migrations       []Migration
	ReroutedPhases   []string
	// Before and After are the full METRICS reports of the mapping
	// around the repair (Before is nil when the pre-repair mapping was
	// not yet routed enough to measure).
	Before, After *metrics.Report
}

// MigratedTasks returns the total number of tasks that moved.
func (r *RepairReport) MigratedTasks() int {
	n := 0
	for _, mg := range r.Migrations {
		n += len(mg.Tasks)
	}
	return n
}

// IPCDelta returns After.TotalIPC - Before.TotalIPC (0 when either side
// is unavailable).
func (r *RepairReport) IPCDelta() float64 {
	if r.Before == nil || r.After == nil {
		return 0
	}
	return r.After.TotalIPC - r.Before.TotalIPC
}

// MaxDilationDelta returns the change in the worst per-phase maximum
// dilation across the repair.
func (r *RepairReport) MaxDilationDelta() int {
	if r.Before == nil || r.After == nil {
		return 0
	}
	return maxDilation(r.After) - maxDilation(r.Before)
}

func maxDilation(rep *metrics.Report) int {
	max := 0
	for _, lm := range rep.Links {
		if lm.MaxDilation > max {
			max = lm.MaxDilation
		}
	}
	return max
}

// String summarizes the repair for the dispatcher trail and CLI output.
func (r *RepairReport) String() string {
	return fmt.Sprintf("repair: failed procs %v links %v; migrated %d tasks in %d clusters; rerouted %d phases; IPC delta %+g",
		r.FailedProcessors, r.FailedLinks, r.MigratedTasks(), len(r.Migrations), len(r.ReroutedPhases), r.IPCDelta())
}

// Repair remaps m around the failures in model, in place and atomically:
// it masks the network, evacuates every cluster resident on a failed
// processor to the nearest live processor (merging into the nearest
// live cluster when no free processor remains), reroutes exactly the
// communication phases invalidated by dead links or migrations, and
// commits only if the result validates. On error m is unchanged.
//
// Distances for evacuation are measured on the pre-repair network: the
// failed processor has no adjacency in the masked view, but "nearest
// surviving neighbor" is still meaningful on the machine as the mapping
// knew it.
func Repair(m *mapping.Mapping, model *Model) (*RepairReport, error) {
	if m.Part == nil || m.Place == nil {
		return nil, fmt.Errorf("fault: mapping is not contracted/embedded; nothing to repair")
	}
	oldNet := m.Net
	newNet, err := model.Mask(oldNet)
	if err != nil {
		return nil, err
	}
	report := &RepairReport{
		FailedProcessors: model.FailedProcessors(),
		FailedLinks:      model.FailedLinks(),
	}
	if before, err := metrics.Compute(m); err == nil {
		report.Before = before
	}
	if model.Empty() {
		report.After = report.Before
		return report, nil
	}
	if newNet.NumLive() == 0 {
		return nil, fmt.Errorf("fault: no live processors remain")
	}

	work := m.Clone()
	work.Net = newNet

	moved, err := evacuate(work, oldNet, report)
	if err != nil {
		return nil, err
	}
	if err := reroute(work, moved, report); err != nil {
		return nil, err
	}
	if err := work.Validate(); err != nil {
		return nil, fmt.Errorf("fault: repair produced invalid mapping: %w", err)
	}
	work.Method = m.Method + "+repair"
	if after, err := metrics.Compute(work); err == nil {
		report.After = after
	}
	*m = *work
	return report, nil
}

// evacuate moves every cluster placed on a failed processor to the
// nearest live free processor, or merges it into the nearest live
// cluster when the live machine is full. It returns the set of tasks
// whose processor changed. Clusters are processed in id order so the
// repair is deterministic.
func evacuate(work *mapping.Mapping, oldNet *topology.Network, report *RepairReport) (map[int]bool, error) {
	newNet := work.Net
	members := work.Clusters()
	occupied := make(map[int]int) // live processor -> cluster
	for c, p := range work.Place {
		if newNet.Alive(p) {
			occupied[p] = c
		}
	}
	mergeInto := make(map[int]int) // dead cluster -> surviving cluster
	moved := make(map[int]bool)    // tasks whose processor changed

	for c := 0; c < len(work.Place); c++ {
		from := work.Place[c]
		if newNet.Alive(from) {
			continue
		}
		for _, t := range members[c] {
			moved[t] = true
		}
		// Nearest free live processor, by pre-repair distance; ties go to
		// the lowest id.
		best, bestD := -1, -1
		for q := 0; q < newNet.N; q++ {
			if !newNet.Alive(q) {
				continue
			}
			if _, used := occupied[q]; used {
				continue
			}
			d := oldNet.Distance(from, q)
			if d < 0 {
				continue
			}
			if best == -1 || d < bestD {
				best, bestD = q, d
			}
		}
		if best >= 0 {
			work.Place[c] = best
			occupied[best] = c
			report.Migrations = append(report.Migrations, Migration{
				Cluster: c, Tasks: members[c], From: from, To: best,
			})
			continue
		}
		// Machine is full: merge into the nearest surviving cluster.
		bestC := -1
		bestD = -1
		for oc, p := range work.Place {
			if oc == c || !newNet.Alive(p) {
				continue
			}
			d := oldNet.Distance(from, p)
			if d < 0 {
				continue
			}
			if bestC == -1 || d < bestD {
				bestC, bestD = oc, d
			}
		}
		if bestC == -1 {
			return nil, fmt.Errorf("fault: no reachable live processor for cluster %d (from processor %d)", c, from)
		}
		mergeInto[c] = bestC
		report.Migrations = append(report.Migrations, Migration{
			Cluster: c, Tasks: members[c], From: from, To: work.Place[bestC], Merged: true,
		})
	}

	if len(mergeInto) > 0 {
		// Apply merges then compact cluster ids so Part stays dense.
		for t, c := range work.Part {
			if dst, ok := mergeInto[c]; ok {
				work.Part[t] = dst
			}
		}
		remap := make([]int, len(work.Place))
		newPlace := make([]int, 0, len(work.Place)-len(mergeInto))
		next := 0
		for c := range work.Place {
			if _, gone := mergeInto[c]; gone {
				remap[c] = -1
				continue
			}
			remap[c] = next
			newPlace = append(newPlace, work.Place[c])
			next++
		}
		for t, c := range work.Part {
			work.Part[t] = remap[c]
		}
		work.Place = newPlace
	}
	return moved, nil
}

// reroute recomputes routes for exactly the phases invalidated by the
// repair: a phase is dirty when any existing route crosses a dead link,
// or any of its edges touches a migrated task (its endpoints moved, or
// an inter/intraprocessor transition occurred).
func reroute(work *mapping.Mapping, moved map[int]bool, report *RepairReport) error {
	for _, p := range work.Graph.Comm {
		routes, routed := work.Routes[p.Name]
		if !routed {
			continue
		}
		dirty := false
		for i, e := range p.Edges {
			if moved[e.From] || moved[e.To] {
				dirty = true
				break
			}
			if i < len(routes) {
				for _, id := range routes[i] {
					if !work.Net.LinkAlive(id) {
						dirty = true
						break
					}
				}
			}
			if dirty {
				break
			}
		}
		if !dirty {
			continue
		}
		pairs, err := route.PhasePairs(work, p.Name)
		if err != nil {
			return err
		}
		fresh, _, err := route.MMRoute(work.Net, pairs, route.Options{})
		if err != nil {
			return fmt.Errorf("fault: rerouting phase %q: %w", p.Name, err)
		}
		work.Routes[p.Name] = fresh
		report.ReroutedPhases = append(report.ReroutedPhases, p.Name)
	}
	sort.Strings(report.ReroutedPhases)
	return nil
}
