package fault_test

import (
	"testing"

	"oregami/internal/check"
	"oregami/internal/fault"
	"oregami/internal/topology"
)

// FuzzRepair drives a mapping through an arbitrary failure sequence
// decoded from the fuzz input: each byte pair (kind, id) fails one
// processor or one link, then repairs. The invariant under test is the
// acceptance criterion of degraded-mode repair: after every successful
// Repair the mapping validates, runs no task on dead hardware, and
// routes over no dead link — and after a failed Repair (machine
// disconnected or drained) the mapping is untouched and still valid.
func FuzzRepair(f *testing.F) {
	f.Add([]byte{0, 3})                                           // one processor failure
	f.Add([]byte{1, 0})                                           // one link failure
	f.Add([]byte{0, 5, 1, 2, 0, 1})                               // proc, link, proc
	f.Add([]byte{0, 0, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6, 0, 7}) // drain everything
	f.Add([]byte{1, 1, 1, 2, 1, 3, 1, 4, 1, 5, 1, 6, 1, 7, 1, 8}) // shred links

	f.Fuzz(func(t *testing.T, data []byte) {
		net := topology.Hypercube(3)
		m := mapOnto(t, 12, net)
		applied := fault.NewModel() // union of all committed failures
		for i := 0; i+1 < len(data) && i < 40; i += 2 {
			step := fault.NewModel()
			if data[i]%2 == 0 {
				step.FailProcessor(int(data[i+1]) % net.N)
			} else {
				step.FailLink(int(data[i+1]) % net.NumLinks())
			}
			placeBefore := append([]int(nil), m.Place...)
			partBefore := append([]int(nil), m.Part...)
			netBefore := m.Net

			_, err := fault.Repair(m, step)
			if err != nil {
				// Atomicity: a failed repair must not have touched the
				// mapping.
				if m.Net != netBefore {
					t.Fatal("failed repair replaced the network")
				}
				for i := range placeBefore {
					if m.Place[i] != placeBefore[i] {
						t.Fatal("failed repair mutated Place")
					}
				}
				for i := range partBefore {
					if m.Part[i] != partBefore[i] {
						t.Fatal("failed repair mutated Part")
					}
				}
			} else {
				for _, p := range step.FailedProcessors() {
					applied.FailProcessor(p)
				}
				for _, l := range step.FailedLinks() {
					applied.FailLink(l)
				}
			}
			// The standing invariant, success or failure.
			if verr := m.Validate(); verr != nil {
				t.Fatalf("mapping invalid after step %d (repair err: %v): %v", i/2, err, verr)
			}
			checkRepaired(t, m, applied)
			// The post-condition oracle must agree: every surviving
			// mapping — repaired or rolled back — passes with zero
			// violations against its current network.
			if vs := check.VerifyMapping(m.Graph, m.Net, m); len(vs) > 0 {
				t.Fatalf("oracle violations after step %d (repair err: %v):\n%s",
					i/2, err, check.Render(vs))
			}
		}
	})
}
