// Package fault adds fault tolerance to OREGAMI's mapping pipeline: a
// model of failed processors and links, a deterministic seeded injector
// for experiments, and degraded-mode repair that incrementally remaps a
// computation around dead hardware instead of recomputing the mapping
// from scratch (the modify-and-recompute philosophy of METRICS applied
// to hardware failures).
package fault

import (
	"fmt"
	"math/rand"
	"sort"

	"oregami/internal/topology"
)

// Model is a set of failed processors and failed links. The zero value
// (or NewModel()) is the empty model: nothing has failed.
type Model struct {
	procs map[int]bool
	links map[int]bool
}

// NewModel returns an empty fault model.
func NewModel() *Model {
	return &Model{procs: make(map[int]bool), links: make(map[int]bool)}
}

// Clone returns an independent copy of the model.
func (m *Model) Clone() *Model {
	c := NewModel()
	for p := range m.procs {
		c.procs[p] = true
	}
	for l := range m.links {
		c.links[l] = true
	}
	return c
}

// FailProcessor marks processor p as failed.
func (m *Model) FailProcessor(p int) {
	if m.procs == nil {
		m.procs = make(map[int]bool)
	}
	m.procs[p] = true
}

// FailLink marks link id as failed.
func (m *Model) FailLink(id int) {
	if m.links == nil {
		m.links = make(map[int]bool)
	}
	m.links[id] = true
}

// Empty reports whether the model contains no failures.
func (m *Model) Empty() bool {
	return m == nil || (len(m.procs) == 0 && len(m.links) == 0)
}

// FailedProcessors returns the failed processor ids in ascending order.
func (m *Model) FailedProcessors() []int {
	if m == nil {
		return nil
	}
	out := make([]int, 0, len(m.procs))
	for p := range m.procs {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// FailedLinks returns the failed link ids in ascending order.
func (m *Model) FailedLinks() []int {
	if m == nil {
		return nil
	}
	out := make([]int, 0, len(m.links))
	for l := range m.links {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// ProcessorFailed reports whether processor p is failed in this model.
func (m *Model) ProcessorFailed(p int) bool { return m != nil && m.procs[p] }

// LinkFailed reports whether link id is failed in this model.
func (m *Model) LinkFailed(id int) bool { return m != nil && m.links[id] }

// String renders the model compactly, e.g. "procs[1 5] links[3]".
func (m *Model) String() string {
	if m.Empty() {
		return "no faults"
	}
	return fmt.Sprintf("procs%v links%v", m.FailedProcessors(), m.FailedLinks())
}

// Mask applies the model to a network, returning the degraded view on
// which embedding and routing only see live hardware. Masking an
// already-degraded view unions the failures.
func (m *Model) Mask(net *topology.Network) (*topology.Network, error) {
	if m.Empty() {
		return net, nil
	}
	return net.Masked(m.FailedProcessors(), m.FailedLinks())
}

// Injector draws random failures from a seeded source, so fault
// experiments are reproducible. It never kills the last live processor.
type Injector struct {
	r *rand.Rand
}

// NewInjector returns an injector seeded for deterministic replay.
func NewInjector(seed int64) *Injector {
	return &Injector{r: rand.New(rand.NewSource(seed))}
}

// FailRandomProcessor picks a uniformly random processor that is live in
// net and not already failed in model, adds it to model, and returns its
// id. It refuses (-1, error) when fewer than two candidates remain, so a
// fault sequence can never take down the whole machine.
func (in *Injector) FailRandomProcessor(net *topology.Network, model *Model) (int, error) {
	var live []int
	for p := 0; p < net.N; p++ {
		if net.Alive(p) && !model.ProcessorFailed(p) {
			live = append(live, p)
		}
	}
	if len(live) < 2 {
		return -1, fmt.Errorf("fault: only %d live processors; refusing to fail more", len(live))
	}
	p := live[in.r.Intn(len(live))]
	model.FailProcessor(p)
	return p, nil
}

// FailRandomLink picks a uniformly random link that is live in net and
// not already failed in model, adds it to model, and returns its id.
func (in *Injector) FailRandomLink(net *topology.Network, model *Model) (int, error) {
	var live []int
	for id := 0; id < net.NumLinks(); id++ {
		if net.LinkAlive(id) && !model.LinkFailed(id) {
			live = append(live, id)
		}
	}
	if len(live) == 0 {
		return -1, fmt.Errorf("fault: no live links left to fail")
	}
	id := live[in.r.Intn(len(live))]
	model.FailLink(id)
	return id, nil
}
