package fault_test

import (
	"fmt"
	"testing"

	"oregami/internal/core"
	"oregami/internal/fault"
	"oregami/internal/graph"
	"oregami/internal/larcs"
	"oregami/internal/mapping"
	"oregami/internal/topology"
)

// ringTaskGraph builds a bare n-task ring with one comm and one exec
// phase — enough structure to exercise contraction, embedding, routing,
// and repair on any target.
func ringTaskGraph(n int) *graph.TaskGraph {
	g := graph.New(fmt.Sprintf("ring%d", n), n)
	p := g.AddCommPhase("shift")
	for i := 0; i < n; i++ {
		g.AddEdge(p, i, (i+1)%n, 1)
	}
	g.AddExecPhase("work", 1)
	return g
}

// mapOnto produces a routed mapping of an n-task ring onto net via the
// arbitrary (MWM-Contract) pipeline.
func mapOnto(t *testing.T, n int, net *topology.Network) *mapping.Mapping {
	t.Helper()
	g := ringTaskGraph(n)
	comp := &larcs.Compiled{Program: &larcs.Program{Name: g.Name}, Graph: g}
	res, err := core.Map(core.Request{Compiled: comp, Net: net, Force: core.ClassArbitrary})
	if err != nil {
		t.Fatalf("mapping ring%d onto %s: %v", n, net.Name, err)
	}
	return res.Mapping
}

func linkID(t *testing.T, net *topology.Network, a, b int) int {
	t.Helper()
	id, ok := net.LinkBetween(a, b)
	if !ok {
		t.Fatalf("no link %d-%d in %s", a, b, net.Name)
	}
	return id
}

// checkRepaired asserts the three acceptance properties: the mapping
// validates, no task runs on a failed processor, and no route crosses a
// failed link.
func checkRepaired(t *testing.T, m *mapping.Mapping, model *fault.Model) {
	t.Helper()
	if err := m.Validate(); err != nil {
		t.Fatalf("repaired mapping invalid: %v", err)
	}
	for task := 0; task < m.Graph.NumTasks; task++ {
		p := m.ProcOf(task)
		if model.ProcessorFailed(p) || !m.Net.Alive(p) {
			t.Errorf("task %d still on failed processor %d", task, p)
		}
	}
	for phase, routes := range m.Routes {
		for i, r := range routes {
			for _, id := range r {
				if model.LinkFailed(id) || !m.Net.LinkAlive(id) {
					t.Errorf("phase %q edge %d routed over failed link %d", phase, i, id)
				}
			}
		}
	}
}

func TestRepairOneProcOneLink(t *testing.T) {
	// One failed processor plus one failed link on each canonical
	// topology. The "full" rows pack two tasks per processor so
	// evacuation must merge clusters; the "sparse" rows leave free
	// processors so evacuation migrates to the nearest one. On the ring
	// the extra failed link is incident to the dead processor (any other
	// choice disconnects the survivors).
	cases := []struct {
		name     string
		net      *topology.Network
		tasks    int
		failProc int // -1: fail the (occupied) processor of task 0 and an incident link
		linkA    int
		linkB    int
	}{
		{"ring8-full", topology.Ring(8), 16, 0, 0, 1},
		{"ring8-sparse", topology.Ring(8), 6, -1, 0, 0},
		{"mesh3x4-full", topology.Mesh(3, 4), 24, 0, 5, 6},
		{"mesh3x4-sparse", topology.Mesh(3, 4), 10, -1, 0, 0},
		{"torus3x3-full", topology.Torus(3, 3), 18, 0, 4, 5},
		{"torus3x3-sparse", topology.Torus(3, 3), 7, -1, 0, 0},
		{"hypercube3-full", topology.Hypercube(3), 16, 5, 0, 1},
		{"hypercube3-sparse", topology.Hypercube(3), 6, -1, 0, 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			m := mapOnto(t, tc.tasks, tc.net)
			failProc, linkA, linkB := tc.failProc, tc.linkA, tc.linkB
			if failProc == -1 {
				// A link incident to the dead processor dies with it
				// anyway, so the survivors stay connected on every
				// topology here (ring minus a node is a path).
				failProc = m.ProcOf(0)
				linkA, linkB = failProc, tc.net.Neighbors(failProc)[0]
			}
			model := fault.NewModel()
			model.FailProcessor(failProc)
			model.FailLink(linkID(t, tc.net, linkA, linkB))

			report, err := fault.Repair(m, model)
			if err != nil {
				t.Fatalf("repair: %v", err)
			}
			checkRepaired(t, m, model)
			if !m.Net.Degraded() {
				t.Error("repaired mapping still on the pristine network")
			}
			// The failed processor hosted at least one cluster in every
			// configuration above, so something must have migrated.
			if report.MigratedTasks() == 0 {
				t.Errorf("no migrations reported: %v", report)
			}
			if report.After == nil {
				t.Error("report has no post-repair metrics")
			}
		})
	}
}

func TestRepairEmptyModelIsNoop(t *testing.T) {
	m := mapOnto(t, 8, topology.Ring(8))
	before := append([]int(nil), m.Place...)
	report, err := fault.Repair(m, fault.NewModel())
	if err != nil {
		t.Fatal(err)
	}
	if report.MigratedTasks() != 0 || len(report.ReroutedPhases) != 0 {
		t.Errorf("empty model caused work: %v", report)
	}
	for c, p := range m.Place {
		if before[c] != p {
			t.Error("empty model moved clusters")
		}
	}
	if m.Net.Degraded() {
		t.Error("empty model degraded the network")
	}
}

func TestRepairIncrementalFaults(t *testing.T) {
	// Two successive repairs must union the failures: the second repair
	// starts from an already-degraded network.
	net := topology.Hypercube(3)
	m := mapOnto(t, 16, net)

	first := fault.NewModel()
	first.FailProcessor(3)
	if _, err := fault.Repair(m, first); err != nil {
		t.Fatalf("first repair: %v", err)
	}
	checkRepaired(t, m, first)

	second := fault.NewModel()
	second.FailProcessor(6)
	if _, err := fault.Repair(m, second); err != nil {
		t.Fatalf("second repair: %v", err)
	}
	// Both failures must hold on the final mapping.
	both := fault.NewModel()
	both.FailProcessor(3)
	both.FailProcessor(6)
	checkRepaired(t, m, both)
	if m.Net.NumLive() != 6 {
		t.Errorf("NumLive = %d after two processor failures, want 6", m.Net.NumLive())
	}
}

func TestRepairFailsAtomically(t *testing.T) {
	// Killing enough of a ring disconnects the survivors; Repair must
	// error and leave the mapping untouched.
	m := mapOnto(t, 12, topology.Ring(6))
	place := append([]int(nil), m.Place...)
	part := append([]int(nil), m.Part...)
	model := fault.NewModel()
	model.FailProcessor(1)
	model.FailProcessor(4) // ring minus {1,4} splits into {2,3} and {5,0}
	if _, err := fault.Repair(m, model); err == nil {
		t.Fatal("repair across a disconnected machine succeeded")
	}
	for i := range place {
		if m.Place[i] != place[i] {
			t.Fatal("failed repair mutated Place")
		}
	}
	for i := range part {
		if m.Part[i] != part[i] {
			t.Fatal("failed repair mutated Part")
		}
	}
	if m.Net.Degraded() {
		t.Error("failed repair swapped in the degraded network")
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("mapping invalid after failed repair: %v", err)
	}
}

func TestInjectorDeterministic(t *testing.T) {
	net := topology.Hypercube(3)
	run := func() ([]int, []int) {
		inj := fault.NewInjector(7)
		model := fault.NewModel()
		var procs, links []int
		for i := 0; i < 3; i++ {
			p, err := inj.FailRandomProcessor(net, model)
			if err != nil {
				t.Fatal(err)
			}
			l, err := inj.FailRandomLink(net, model)
			if err != nil {
				t.Fatal(err)
			}
			procs = append(procs, p)
			links = append(links, l)
		}
		return procs, links
	}
	p1, l1 := run()
	p2, l2 := run()
	for i := range p1 {
		if p1[i] != p2[i] || l1[i] != l2[i] {
			t.Fatalf("seeded injector not deterministic: %v/%v vs %v/%v", p1, l1, p2, l2)
		}
	}
	// The injector never drains the machine below one live processor.
	model := fault.NewModel()
	inj := fault.NewInjector(1)
	for i := 0; i < net.N+2; i++ {
		inj.FailRandomProcessor(net, model)
	}
	if got := len(model.FailedProcessors()); got != net.N-1 {
		t.Errorf("injector failed %d of %d processors, want %d", got, net.N, net.N-1)
	}
}
