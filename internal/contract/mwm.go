// Package contract implements OREGAMI's contraction algorithms: the
// group-theoretic contraction for node-symmetric task graphs
// (Section 4.2.2) and Algorithm MWM-Contract for arbitrary task graphs
// (Section 4.3), plus the greedy-only and random baselines used by the
// evaluation harness.
package contract

//oregami:hot

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"oregami/internal/graph"
	"oregami/internal/matching"
	"oregami/internal/par"
)

// Options parameterizes MWM-Contract.
type Options struct {
	// Processors is the number of clusters allowed (|A| in the paper).
	Processors int
	// MaxTasksPerProc is the load-balancing constraint B: no cluster may
	// exceed B tasks. Zero means the tightest feasible even bound,
	// 2 * ceil(V / (2P)).
	MaxTasksPerProc int
	// SkipGreedy disables the greedy pre-merge stage (ablation). The
	// matching stage then runs directly on individual tasks and the
	// result may use more than Processors clusters if V > 2P.
	SkipGreedy bool
	// SkipMatching disables the maximum-weight-matching stage
	// (ablation): the greedy heuristic runs all the way down to
	// Processors clusters by itself.
	SkipMatching bool
	// Ctx carries cooperative cancellation into the O(E V log V) merge
	// and repair loops (nil means no cancellation).
	Ctx context.Context
	// Parallelism bounds the worker count for candidate-gain scoring:
	// the per-phase collapsed-weight accumulation and the weight-ordered
	// candidate sorts run on up to this many goroutines (0 = GOMAXPROCS,
	// 1 = sequential). The partition produced is bit-identical at every
	// setting (see internal/par).
	Parallelism int
}

func (o Options) ctx() context.Context {
	if o.Ctx == nil {
		return context.Background()
	}
	return o.Ctx
}

func (o Options) bound(numTasks int) (int, error) {
	b := o.MaxTasksPerProc
	if b == 0 {
		perProc := (numTasks + 2*o.Processors - 1) / (2 * o.Processors)
		b = 2 * perProc
	}
	if numTasks > o.Processors*b {
		return 0, fmt.Errorf("contract: %d tasks cannot fit %d processors with B=%d",
			numTasks, o.Processors, b)
	}
	return b, nil
}

// MWMContract partitions the tasks of g into at most opt.Processors
// clusters of at most B tasks while minimizing total interprocessor
// communication, per Section 4.3 of the paper:
//
//  1. A greedy heuristic examines collapsed edges in non-increasing
//     weight order, merging clusters while no cluster exceeds B/2 tasks,
//     until at most 2P clusters remain.
//  2. A maximum-weight matching over the cluster graph pairs clusters
//     optimally; matched pairs merge.
//
// It returns part with part[t] = cluster of task t.
func MWMContract(g *graph.TaskGraph, opt Options) ([]int, error) {
	ctx := opt.ctx()
	workers := par.Resolve(opt.Parallelism)
	if opt.Processors < 1 {
		return nil, fmt.Errorf("contract: need at least one processor")
	}
	v := g.NumTasks
	if v == 0 {
		return nil, fmt.Errorf("contract: empty task graph")
	}
	b, err := opt.bound(v)
	if err != nil {
		return nil, err
	}
	// The collapsed static graph is scored once and reused by every
	// stage (the sequential version recomputed it per stage).
	entries := g.CollapsedEntries(workers)
	u := newUnionFind(v)

	if !opt.SkipGreedy && v > 2*opt.Processors {
		if err := greedyMerge(ctx, workers, entries, u, 2*opt.Processors, b/2); err != nil {
			return nil, err
		}
		if u.count > 2*opt.Processors {
			// The edge list ran dry (or pairwise merges dead-ended);
			// repair at task level. A partition into 2P clusters of
			// B/2 always exists since V <= P*B.
			part, err := repairPartition(ctx, entries, u.partition(), 2*opt.Processors, b/2)
			if err != nil {
				return nil, err
			}
			u = unionFindFromPartition(part)
		}
	}
	if opt.SkipMatching {
		// Ablation: greedy all the way to P clusters, allowing full B.
		if err := greedyMerge(ctx, workers, entries, u, opt.Processors, b); err != nil {
			return nil, err
		}
		if u.count > opt.Processors {
			return repairPartition(ctx, entries, u.partition(), opt.Processors, b)
		}
		return u.partition(), nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Matching stage. Cluster ids and sizes.
	ids, size := u.clusters()
	k := len(ids)
	scr := graph.GetScratch()
	defer scr.Release()
	index := scr.Ints(v)
	for i, id := range ids {
		index[id] = i
	}
	// Aggregate intercluster weights, scanning entries in their sorted
	// order so each blossom edge weight accumulates in a fixed sequence —
	// the same per-pair addition order the map[[2]int]float64 table this
	// replaces saw. Either path yields the edge list already in the
	// strict (I, J) order the matching needs, so no re-sort.
	edges := interclusterEdges(entries, u, index, size, k, b, scr)
	mate := matching.MaxWeightMatching(k, edges, false)
	merged := k
	for i, m := range mate {
		if m > i {
			u.union(ids[i], ids[m])
			merged--
		}
	}
	// The matching maximizes internalized weight but may leave more than
	// P clusters (zero-benefit merges are not in the edge set). Repair
	// the count down by redistributing the smallest clusters.
	if merged > opt.Processors {
		return repairPartition(ctx, entries, u.partition(), opt.Processors, b)
	}
	return u.partition(), nil
}

// interclusterEdges folds the collapsed entries into the weighted
// cluster graph the matching stage runs on: one WEdge per connected
// cluster pair whose combined size fits b, ascending by (I, J). Both
// paths accumulate each pair's weight in entries order, so the sums are
// bit-identical to the historical map accumulation.
func interclusterEdges(entries []graph.CollapsedEntry, u *unionFind, index, size []int, k, b int, scr *graph.Scratch) []matching.WEdge {
	if k <= 512 {
		// Dense k x k half-matrix; after greedyMerge k is at most 2P.
		agg := scr.Float64s(k * k)
		hit := scr.Bools(k * k)
		for _, e := range entries {
			a, bb := index[u.find(e.A)], index[u.find(e.B)]
			if a == bb {
				continue
			}
			if a > bb {
				a, bb = bb, a
			}
			agg[a*k+bb] += e.W
			hit[a*k+bb] = true
		}
		edges := make([]matching.WEdge, 0, k*(k-1)/2)
		for a := 0; a < k; a++ {
			for bb := a + 1; bb < k; bb++ {
				if hit[a*k+bb] && size[a]+size[bb] <= b {
					edges = append(edges, matching.WEdge{I: a, J: bb, Weight: agg[a*k+bb]})
				}
			}
		}
		return edges
	}
	// Large k (SkipGreedy ablation on a big graph): sort (a, b, entry)
	// triples and fold runs — per-pair additions still happen in entries
	// order, so the weights match the dense path bit for bit.
	type aggTriple struct {
		a, b, i int32
		w       float64
	}
	ts := make([]aggTriple, 0, len(entries))
	for i, e := range entries {
		a, bb := index[u.find(e.A)], index[u.find(e.B)]
		if a == bb {
			continue
		}
		if a > bb {
			a, bb = bb, a
		}
		ts = append(ts, aggTriple{a: int32(a), b: int32(bb), i: int32(i), w: e.W})
	}
	sort.Slice(ts, func(x, y int) bool {
		if ts[x].a != ts[y].a {
			return ts[x].a < ts[y].a
		}
		if ts[x].b != ts[y].b {
			return ts[x].b < ts[y].b
		}
		return ts[x].i < ts[y].i
	})
	var edges []matching.WEdge
	for i := 0; i < len(ts); {
		a, bb := ts[i].a, ts[i].b
		w := 0.0
		for i < len(ts) && ts[i].a == a && ts[i].b == bb {
			w += ts[i].w
			i++
		}
		if size[a]+size[bb] <= b {
			edges = append(edges, matching.WEdge{I: int(a), J: int(bb), Weight: w})
		}
	}
	return edges
}

// greedyMerge is the paper's greedy pre-merge: process collapsed edges by
// non-increasing weight, merging when the combined cluster stays within
// maxSize, stopping once at most target clusters remain. It may stop
// short if the edge list runs dry; callers repair afterwards. The
// candidate-gain ranking (weight-descending sort) runs on up to workers
// goroutines; the merge scan itself is inherently sequential and checks
// ctx periodically so a deadline interrupts large graphs mid-merge.
func greedyMerge(ctx context.Context, workers int, entries []graph.CollapsedEntry, u *unionFind, target, maxSize int) error {
	edges := append([]graph.CollapsedEntry(nil), entries...)
	if err := ctx.Err(); err != nil {
		return err
	}
	// (W desc, A, B) is a strict total order because (A, B) is unique,
	// so the sorted order — and every merge below — is worker-count
	// independent.
	par.Sort(workers, edges, func(a, b graph.CollapsedEntry) bool {
		if a.W != b.W {
			return a.W > b.W
		}
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
	for i, e := range edges {
		if i%256 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if u.count <= target {
			return nil
		}
		ra, rb := u.find(e.A), u.find(e.B)
		if ra == rb || u.size[ra]+u.size[rb] > maxSize {
			continue
		}
		u.union(ra, rb)
	}
	return nil
}

// repairPartition reduces the cluster count to at most target by
// dissolving the smallest clusters: each of their tasks moves to the
// cluster with spare capacity (size < maxSize) to which it communicates
// the most. While the count exceeds the target, a cluster with spare
// capacity must exist (otherwise total size would exceed
// target*maxSize >= V), so the repair always terminates.
func repairPartition(ctx context.Context, entries []graph.CollapsedEntry, part []int, target, maxSize int) ([]int, error) {
	n := len(part)
	scr := graph.GetScratch()
	defer scr.Release()
	// Cluster ids stay within the dense range partition() produced, so
	// sizes is a flat array instead of the map it used to be; scanning
	// ids ascending reproduces the map version's (size, id) and
	// (adjacency, id) tie-breaks exactly.
	sizes := scr.Ints(n)
	// Incidence index over entries: task t's entries are
	// incIdx[incOff[t]:incOff[t+1]], ascending, so per-task adjacency
	// weights accumulate in entries order — the same float addition
	// sequence as the full entry scan this replaces.
	incOff := scr.Ints(n + 1)
	for _, e := range entries {
		incOff[e.A+1]++
		incOff[e.B+1]++
	}
	for t := 0; t < n; t++ {
		incOff[t+1] += incOff[t]
	}
	incIdx := scr.Ints(2 * len(entries))
	next := scr.Ints(n)
	copy(next, incOff[:n])
	for i, e := range entries {
		incIdx[next[e.A]] = i
		next[e.A]++
		incIdx[next[e.B]] = i
		next[e.B]++
	}
	aw := scr.Float64s(n)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for i := range sizes {
			sizes[i] = 0
		}
		numClusters := 0
		for _, c := range part {
			if sizes[c] == 0 {
				numClusters++
			}
			sizes[c]++
		}
		if numClusters <= target {
			return densePartition(part), nil
		}
		// Smallest cluster (ties: smallest id).
		smallest, best := -1, 1<<30
		for c, s := range sizes {
			if s > 0 && s < best {
				smallest, best = c, s
			}
		}
		var members []int
		for t, c := range part {
			if c == smallest {
				members = append(members, t)
			}
		}
		for _, t := range members {
			// Adjacency weight from t to every cluster, accumulated in
			// entries order.
			for te := incOff[t]; te < incOff[t+1]; te++ {
				e := entries[incIdx[te]]
				other := e.A
				if other == t {
					other = e.B
				}
				aw[part[other]] += e.W
			}
			// Destination with spare capacity maximizing adjacency
			// (ties: smallest id, via the ascending scan).
			dest, destW := -1, -1.0
			for c, s := range sizes {
				if c == smallest || s == 0 || s >= maxSize {
					continue
				}
				if aw[c] > destW {
					dest, destW = c, aw[c]
				}
			}
			for te := incOff[t]; te < incOff[t+1]; te++ {
				e := entries[incIdx[te]]
				other := e.A
				if other == t {
					other = e.B
				}
				aw[part[other]] = 0
			}
			if dest == -1 {
				return nil, fmt.Errorf("contract: cannot place task %d within B=%d", t, maxSize)
			}
			part[t] = dest
			sizes[dest]++
			sizes[smallest]--
		}
	}
}

// densePartition renumbers cluster ids to 0..k-1 by smallest member.
func densePartition(part []int) []int {
	out := make([]int, len(part))
	id := make([]int, len(part))
	for i := range id {
		id[i] = -1
	}
	next := 0
	for t, c := range part {
		if id[c] == -1 {
			id[c] = next
			next++
		}
		out[t] = id[c]
	}
	return out
}

// unionFindFromPartition rebuilds a union-find matching a partition.
func unionFindFromPartition(part []int) *unionFind {
	u := newUnionFind(len(part))
	first := make([]int, len(part))
	for i := range first {
		first[i] = -1
	}
	for t, c := range part {
		if first[c] >= 0 {
			u.union(first[c], t)
		} else {
			first[c] = t
		}
	}
	return u
}

// GreedyOnly is the ablation baseline: the greedy heuristic alone,
// merging to at most processors clusters within bound B.
func GreedyOnly(g *graph.TaskGraph, processors, b int) ([]int, error) {
	return MWMContract(g, Options{Processors: processors, MaxTasksPerProc: b, SkipMatching: true})
}

// Random is the naive baseline: a random balanced partition into exactly
// min(processors, tasks) clusters.
func Random(g *graph.TaskGraph, processors int, seed int64) []int {
	r := rand.New(rand.NewSource(seed))
	v := g.NumTasks
	k := processors
	if v < k {
		k = v
	}
	order := r.Perm(v)
	part := make([]int, v)
	for i, t := range order {
		part[t] = i % k
	}
	return part
}

// --- union-find ---------------------------------------------------------

type unionFind struct {
	parent []int
	size   []int
	count  int
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int, n), size: make([]int, n), count: n}
	for i := range u.parent {
		u.parent[i] = i
		u.size[i] = 1
	}
	return u
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
	u.count--
}

// clusters returns the current root ids, ascending, and aligned with
// them the cluster sizes: size[i] counts the members of root ids[i].
func (u *unionFind) clusters() (ids []int, size []int) {
	n := len(u.parent)
	count := make([]int, n)
	for x := range u.parent {
		count[u.find(x)]++
	}
	// Roots scanned ascending, so ids is sorted by construction.
	for r, c := range count {
		if c > 0 {
			ids = append(ids, r)
			size = append(size, c)
		}
	}
	return ids, size
}

// partition returns dense cluster ids per element, ordered by smallest
// member.
func (u *unionFind) partition() []int {
	n := len(u.parent)
	out := make([]int, n)
	id := make([]int, n)
	for i := range id {
		id[i] = -1
	}
	next := 0
	for x := range u.parent {
		r := u.find(x)
		if id[r] == -1 {
			id[r] = next
			next++
		}
		out[x] = id[r]
	}
	return out
}
