package contract

import (
	"fmt"

	"oregami/internal/flow"
	"oregami/internal/graph"
)

// TwoProcStone computes the optimal two-processor assignment of the task
// graph in Stone's model (the network-flow foundation the paper cites in
// Section 2): task t costs execA[t] on processor 0 and execB[t] on
// processor 1, and every collapsed communication edge crossing the cut
// costs its weight. It returns part (0/1 per task) and the optimal total
// cost. Unlike MWM-Contract there is no load-balance constraint — Stone
// trades balance for total cost, which is exactly the comparison the
// evaluation harness draws.
func TwoProcStone(g *graph.TaskGraph, execA, execB []float64) ([]int, float64, error) {
	n := g.NumTasks
	if len(execA) != n || len(execB) != n {
		return nil, 0, fmt.Errorf("contract: exec cost vectors must cover %d tasks", n)
	}
	comm := make([][]float64, n)
	for i := range comm {
		comm[i] = make([]float64, n)
	}
	csr := g.CSR()
	for a := 0; a < n; a++ {
		nbrs := csr.Neighbors(a)
		ws := csr.RowWeights(a)
		for i, b := range nbrs {
			comm[a][b] = ws[i]
		}
	}
	onA, cost, err := flow.StoneAssignment(execA, execB, comm)
	if err != nil {
		return nil, 0, err
	}
	part := make([]int, n)
	for t, a := range onA {
		if !a {
			part[t] = 1
		}
	}
	return part, cost, nil
}

// UniformExecCosts sums each task's execution cost over all exec phases,
// the natural homogeneous input for TwoProcStone.
func UniformExecCosts(g *graph.TaskGraph) []float64 {
	out := make([]float64, g.NumTasks)
	for _, p := range g.Exec {
		for t := 0; t < g.NumTasks; t++ {
			out[t] += p.TaskCost(t)
		}
	}
	return out
}

// AssignmentCost evaluates a 0/1 partition under Stone's objective.
func AssignmentCost(g *graph.TaskGraph, part []int, execA, execB []float64) float64 {
	cost := 0.0
	for t, c := range part {
		if c == 0 {
			cost += execA[t]
		} else {
			cost += execB[t]
		}
	}
	// Sorted entries, not the CollapsedWeights map, so the float objective
	// is bit-identical between runs.
	for _, e := range g.CollapsedEntries(1) {
		if part[e.A] != part[e.B] {
			cost += e.W
		}
	}
	return cost
}
