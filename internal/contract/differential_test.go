package contract_test

import (
	"math"
	"testing"

	"math/rand"

	"oregami/internal/contract"
	"oregami/internal/gen"
	"oregami/internal/graph"
)

// cutWeight is the interprocessor communication volume of a partition:
// the total weight of edges whose endpoints land in different clusters,
// summed over every communication phase.
func cutWeight(g *graph.TaskGraph, part []int) float64 {
	var w float64
	for _, p := range g.Comm {
		for _, e := range p.Edges {
			if part[e.From] != part[e.To] {
				w += e.Weight
			}
		}
	}
	return w
}

// clusterSizes returns the size of each cluster and fails the test if
// cluster ids are not dense 0..k-1.
func clusterSizes(t *testing.T, part []int) []int {
	t.Helper()
	k := 0
	for _, c := range part {
		if c < 0 {
			t.Fatalf("negative cluster id %d in %v", c, part)
		}
		if c+1 > k {
			k = c + 1
		}
	}
	sizes := make([]int, k)
	for _, c := range part {
		sizes[c]++
	}
	for c, s := range sizes {
		if s == 0 {
			t.Fatalf("cluster ids not dense: cluster %d empty in %v", c, part)
		}
	}
	return sizes
}

// bruteForceMinCut enumerates every partition of n tasks (restricted
// growth strings) with at most maxClusters clusters of at most
// maxSize tasks and returns the minimum cut weight. Only feasible for
// the ≤10-task graphs the generators produce here.
func bruteForceMinCut(g *graph.TaskGraph, maxClusters, maxSize int) float64 {
	n := g.NumTasks
	part := make([]int, n)
	sizes := make([]int, n)
	best := math.Inf(1)
	var rec func(i, k int)
	rec = func(i, k int) {
		if i == n {
			if w := cutWeight(g, part); w < best {
				best = w
			}
			return
		}
		for c := 0; c <= k && c < maxClusters; c++ {
			if sizes[c] == maxSize {
				continue
			}
			part[i] = c
			sizes[c]++
			next := k
			if c == k {
				next = k + 1
			}
			rec(i+1, next)
			sizes[c]--
		}
	}
	rec(0, 0)
	return best
}

// TestMWMContractVsBruteForce checks the heuristic against exhaustive
// enumeration on small graphs: its partitions must be feasible (cluster
// count and size bounds respected) and can never beat the true optimum.
func TestMWMContractVsBruteForce(t *testing.T) {
	gen.ForEachSeed(t, 30, func(t *testing.T, seed int64, r *rand.Rand) {
		size := gen.GraphSize{
			Tasks:     2 + r.Intn(7), // ≤8: exhaustive enumeration stays cheap
			Phases:    1 + r.Intn(2),
			Density:   0.2 + 0.5*r.Float64(),
			MaxWeight: 1 + r.Intn(5),
		}
		g := gen.TaskGraph(r, size)
		procs := 2 + r.Intn(3)
		bound := 2 * ((g.NumTasks + 2*procs - 1) / (2 * procs))

		part, err := contract.MWMContract(g, contract.Options{
			Processors:      procs,
			MaxTasksPerProc: bound,
		})
		if err != nil {
			t.Fatalf("MWMContract(%d tasks, P=%d, B=%d): %v", g.NumTasks, procs, bound, err)
		}
		sizes := clusterSizes(t, part)
		if len(sizes) > procs {
			t.Fatalf("MWMContract used %d clusters, allowed %d", len(sizes), procs)
		}
		for c, s := range sizes {
			if s > bound {
				t.Fatalf("cluster %d has %d tasks, bound %d", c, s, bound)
			}
		}
		mwm := cutWeight(g, part)
		opt := bruteForceMinCut(g, procs, bound)
		if opt > mwm {
			t.Fatalf("brute force found cut %g worse than heuristic %g — enumeration is broken", opt, mwm)
		}
	})
}

// TestGroupContractVsBruteForceOnCayley checks the group-theoretic
// contraction on generated Cayley graphs: the coset partition must be
// perfectly balanced and no better than the exhaustive optimum under
// the same (clusters, balance) constraints, and MWM-Contract on the same
// instance must obey the same floor.
func TestGroupContractVsBruteForceOnCayley(t *testing.T) {
	gen.ForEachSeed(t, 30, func(t *testing.T, seed int64, r *rand.Rand) {
		g := gen.Cayley(r, 8)
		n := g.NumTasks
		var divisors []int
		for k := 2; k < n; k++ {
			if n%k == 0 {
				divisors = append(divisors, k)
			}
		}
		if len(divisors) == 0 {
			t.Skipf("order %d is prime; no proper coset partition", n)
		}
		clusters := divisors[r.Intn(len(divisors))]

		part, info, err := contract.GroupContract(g, clusters)
		if err != nil {
			t.Fatalf("GroupContract(%d tasks, %d clusters): %v", n, clusters, err)
		}
		if info == nil || info.Group == nil || info.Group.Order() != n {
			t.Fatalf("group info missing or wrong order: %+v", info)
		}
		sizes := clusterSizes(t, part)
		if len(sizes) != clusters {
			t.Fatalf("got %d clusters, want exactly %d", len(sizes), clusters)
		}
		for c, s := range sizes {
			if s != n/clusters {
				t.Fatalf("cluster %d has %d tasks, want balanced %d", c, s, n/clusters)
			}
		}
		opt := bruteForceMinCut(g, clusters, n/clusters)
		if grp := cutWeight(g, part); opt > grp {
			t.Fatalf("brute force cut %g worse than group contraction %g", opt, grp)
		}

		mwmPart, err := contract.MWMContract(g, contract.Options{
			Processors:      clusters,
			MaxTasksPerProc: n / clusters,
		})
		if err != nil {
			t.Fatalf("MWMContract on Cayley graph: %v", err)
		}
		clusterSizes(t, mwmPart)
		if mwm := cutWeight(g, mwmPart); opt > mwm {
			t.Fatalf("brute force cut %g worse than MWM cut %g", opt, mwm)
		}
	})
}
