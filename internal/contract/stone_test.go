package contract

import (
	"math/rand"
	"testing"

	"oregami/internal/workload"
)

func TestTwoProcStoneOptimalVsMWM(t *testing.T) {
	// On random heterogeneous instances, Stone's assignment must never
	// cost more (under Stone's objective) than the balanced
	// MWM-Contract partition: the optimum lower-bounds any heuristic.
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		n := 6 + r.Intn(12)
		g := workload.RandomTaskGraph(n, 0.3, 10, int64(trial+500))
		execA := make([]float64, n)
		execB := make([]float64, n)
		for i := 0; i < n; i++ {
			execA[i] = float64(r.Intn(12))
			execB[i] = float64(r.Intn(12))
		}
		stonePart, stoneCost, err := TwoProcStone(g, execA, execB)
		if err != nil {
			t.Fatal(err)
		}
		if got := AssignmentCost(g, stonePart, execA, execB); got != stoneCost {
			t.Fatalf("trial %d: reported cost %g != evaluated %g", trial, stoneCost, got)
		}
		mwmPart, err := MWMContract(g, Options{Processors: 2})
		if err != nil {
			t.Fatal(err)
		}
		if mwmCost := AssignmentCost(g, mwmPart, execA, execB); mwmCost < stoneCost {
			t.Fatalf("trial %d: balanced MWM cost %g beats 'optimal' Stone %g", trial, mwmCost, stoneCost)
		}
	}
}

func TestTwoProcStoneFig5(t *testing.T) {
	// With zero exec costs Stone minimizes pure IPC with no balance
	// constraint: on the Fig 5 graph the optimum is the single weakest
	// community boundary... in fact all tasks on one processor (cut 0).
	g := workload.Fig5Graph()
	zero := make([]float64, 12)
	part, cost, err := TwoProcStone(g, zero, zero)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 {
		t.Errorf("free-exec Stone cost = %g, want 0 (everything one side)", cost)
	}
	for i := 1; i < 12; i++ {
		if part[i] != part[0] {
			t.Errorf("zero-cost instance split the tasks: %v", part)
			break
		}
	}
	// Forcing balance via exec costs: processor 0 charges community 3's
	// tasks, processor 1 charges everyone else heavily.
	execA := make([]float64, 12)
	execB := make([]float64, 12)
	for i := 0; i < 8; i++ {
		execB[i] = 100 // tasks 0..7 want processor 0
	}
	for i := 8; i < 12; i++ {
		execA[i] = 100 // tasks 8..11 want processor 1
	}
	part, cost, err = TwoProcStone(g, execA, execB)
	if err != nil {
		t.Fatal(err)
	}
	// Cut between communities {0..7} and {8..11}: edges (7,8,2) and
	// (11,0,3) -> IPC 5, no exec cost.
	if cost != 5 {
		t.Errorf("skewed Stone cost = %g, want 5", cost)
	}
	for i := 0; i < 8; i++ {
		if part[i] != 0 {
			t.Errorf("task %d not on processor 0", i)
		}
	}
	for i := 8; i < 12; i++ {
		if part[i] != 1 {
			t.Errorf("task %d not on processor 1", i)
		}
	}
}

func TestUniformExecCosts(t *testing.T) {
	w, _ := workload.ByName("nbody")
	c, _ := w.Compile(map[string]int{"n": 5, "s": 1})
	costs := UniformExecCosts(c.Graph)
	// compute1 + compute2, each cost n=5 -> 10 per task.
	for t2, v := range costs {
		if v != 10 {
			t.Errorf("task %d cost %g, want 10", t2, v)
		}
	}
}

func TestTwoProcStoneErrors(t *testing.T) {
	g := workload.Fig5Graph()
	if _, _, err := TwoProcStone(g, make([]float64, 3), make([]float64, 12)); err == nil {
		t.Error("size mismatch accepted")
	}
}
