package contract

import (
	"math/rand"
	"testing"

	"oregami/internal/workload"
)

func TestKLRefineNeverWorse(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		n := 10 + r.Intn(20)
		g := workload.RandomTaskGraph(n, 0.3, 15, int64(trial+900))
		procs := 3 + r.Intn(3)
		part := Random(g, procs, int64(trial))
		before := g.EdgeCut(part)
		maxSize := 0
		sizes := map[int]int{}
		for _, c := range part {
			sizes[c]++
		}
		for _, s := range sizes {
			if s > maxSize {
				maxSize = s
			}
		}
		refined, moves := KLRefine(g, part, maxSize, 10)
		after := g.EdgeCut(refined)
		if after > before {
			t.Fatalf("trial %d: KL increased cut %g -> %g", trial, before, after)
		}
		if moves > 0 && after == before {
			t.Fatalf("trial %d: %d moves reported with no improvement", trial, moves)
		}
		// Size bound respected; clusters stay non-empty.
		newSizes := map[int]int{}
		for _, c := range refined {
			newSizes[c]++
		}
		if len(newSizes) != len(sizes) {
			t.Fatalf("trial %d: cluster count changed %d -> %d", trial, len(sizes), len(newSizes))
		}
		for c, s := range newSizes {
			if s > maxSize {
				t.Fatalf("trial %d: cluster %d grew to %d > %d", trial, c, s, maxSize)
			}
		}
	}
}

func TestKLRefineImprovesRandomSubstantially(t *testing.T) {
	// On community-structured graphs KL should recover most of the gap
	// between a random partition and MWM-Contract.
	g := workload.Fig5Graph()
	part := Random(g, 3, 7)
	before := g.EdgeCut(part)
	refined, moves := KLRefine(g, append([]int(nil), part...), 4, 20)
	after := g.EdgeCut(refined)
	// Greedy local search can stall at a local optimum, but on this
	// community-structured instance it must recover a meaningful
	// fraction of the random partition's excess cut.
	if moves == 0 || after > 0.8*before {
		t.Errorf("KL left cut at %g after %d moves (random start %g)", after, moves, before)
	}
}

func TestKLRefineOnOptimumIsNoOp(t *testing.T) {
	g := workload.Fig5Graph()
	part, err := MWMContract(g, Options{Processors: 3, MaxTasksPerProc: 4})
	if err != nil {
		t.Fatal(err)
	}
	refined, moves := KLRefine(g, append([]int(nil), part...), 4, 10)
	if moves != 0 {
		t.Errorf("KL found %d moves on the optimal partition", moves)
	}
	if g.EdgeCut(refined) != 6 {
		t.Errorf("cut changed to %g", g.EdgeCut(refined))
	}
}
