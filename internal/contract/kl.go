package contract

import (
	"oregami/internal/graph"
)

// KLRefine improves a contraction by Kernighan-Lin-style pairwise task
// swaps and single-task moves between clusters: any change that lowers
// the total IPC while keeping every cluster within maxSize is kept.
// Sweeps repeat until no improvement or maxSweeps is reached. It returns
// the refined partition (modified in place) and the number of improving
// moves. Pass maxSize = 0 for "preserve the current maximum cluster
// size".
func KLRefine(g *graph.TaskGraph, part []int, maxSize, maxSweeps int) ([]int, int) {
	n := g.NumTasks
	k := 0
	for _, c := range part {
		if c+1 > k {
			k = c + 1
		}
	}
	size := make([]int, k)
	for _, c := range part {
		size[c]++
	}
	if maxSize == 0 {
		for _, s := range size {
			if s > maxSize {
				maxSize = s
			}
		}
	}
	// adjacency with weights for gain computation.
	adj := g.Undirected()
	// external[t][c] = total weight from t to cluster c.
	extTo := func(t, c int) float64 {
		total := 0.0
		for _, nb := range adj[t] {
			if part[nb.To] == c {
				total += nb.Weight
			}
		}
		return total
	}
	moves := 0
	for sweep := 0; sweep < maxSweeps; sweep++ {
		improved := false
		// Single-task moves.
		for t := 0; t < n; t++ {
			from := part[t]
			if size[from] == 1 {
				continue // would empty the cluster
			}
			bestGain := 0.0
			bestTo := -1
			internal := extTo(t, from)
			for c := 0; c < k; c++ {
				if c == from || size[c] >= maxSize {
					continue
				}
				gain := extTo(t, c) - internal
				if gain > bestGain {
					bestGain = gain
					bestTo = c
				}
			}
			if bestTo != -1 {
				size[from]--
				size[bestTo]++
				part[t] = bestTo
				moves++
				improved = true
			}
		}
		// Pairwise swaps (feasible regardless of size bounds).
		for a := 0; a < n; a++ {
			for _, nb := range adj[a] {
				b := nb.To
				if b <= a || part[a] == part[b] {
					continue
				}
				ca, cb := part[a], part[b]
				gain := (extTo(a, cb) - extTo(a, ca)) + (extTo(b, ca) - extTo(b, cb)) - 2*weightBetween(adj, a, b)
				if gain > 0 {
					part[a], part[b] = cb, ca
					moves++
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return part, moves
}

func weightBetween(adj [][]graph.WeightedNeighbor, a, b int) float64 {
	for _, nb := range adj[a] {
		if nb.To == b {
			return nb.Weight
		}
	}
	return 0
}
