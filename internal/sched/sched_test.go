package sched

import (
	"strings"
	"testing"

	"oregami/internal/core"
	"oregami/internal/mapping"
	"oregami/internal/topology"
	"oregami/internal/workload"
)

func mappedNBody(t *testing.T, n int) *mapping.Mapping {
	t.Helper()
	w, _ := workload.ByName("nbody")
	c, err := w.Compile(map[string]int{"n": n, "s": 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Map(core.Request{Compiled: c, Net: topology.Hypercube(3)})
	if err != nil {
		t.Fatal(err)
	}
	return res.Mapping
}

func TestBuildInvariants(t *testing.T) {
	m := mappedNBody(t, 15)
	s, err := Build(m)
	if err != nil {
		t.Fatal(err)
	}
	// 15 tasks on 8 procs: max 2 per proc -> 2 synchrony sets.
	if len(s.Sets) != 2 {
		t.Fatalf("sets = %d, want 2", len(s.Sets))
	}
	covered := 0
	for si, set := range s.Sets {
		procs := map[int]bool{}
		for _, task := range set {
			covered++
			p := m.ProcOf(task)
			if procs[p] {
				t.Errorf("set %d has two tasks on processor %d", si, p)
			}
			procs[p] = true
			if s.SlotOf[task] != si {
				t.Errorf("SlotOf inconsistent for task %d", task)
			}
		}
	}
	if covered != 15 {
		t.Errorf("covered %d tasks, want 15", covered)
	}
}

func TestBuildRequiresEmbedding(t *testing.T) {
	w, _ := workload.ByName("nbody")
	c, _ := w.Compile(nil)
	m := mapping.New(c.Graph, topology.Hypercube(3))
	if _, err := Build(m); err == nil {
		t.Error("unembedded mapping accepted")
	}
}

func TestDirectivesPathExpressions(t *testing.T) {
	m := mappedNBody(t, 15)
	s, err := Build(m)
	if err != nil {
		t.Fatal(err)
	}
	sawPair := false
	for p := 0; p < m.Net.N; p++ {
		d := s.Directive(m, p)
		if !strings.HasPrefix(d, "path ") || !strings.HasSuffix(d, " end") {
			t.Errorf("directive %q not a path expression", d)
		}
		if strings.Count(d, ";") == 1 {
			sawPair = true
		}
	}
	if !sawPair {
		t.Error("no processor multiplexes two tasks")
	}
	out := s.Render(m)
	if !strings.Contains(out, "synchrony set 0") || !strings.Contains(out, "proc") {
		t.Errorf("render output missing sections:\n%s", out)
	}
}

func TestDirectiveEmptyProcessor(t *testing.T) {
	// 4 tasks on 8 processors: some processors idle.
	w, _ := workload.ByName("broadcast8")
	c, _ := w.Compile(nil)
	res, err := core.Map(core.Request{Compiled: c, Net: topology.Hypercube(3)})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(res.Mapping)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Sets) != 1 {
		t.Errorf("1:1 mapping should give one synchrony set, got %d", len(s.Sets))
	}
}

func TestAlignmentMetric(t *testing.T) {
	m := mappedNBody(t, 15)
	s, err := Build(m)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Alignment(m, "ring")
	if err != nil {
		t.Fatal(err)
	}
	if a < 0 || a > 1 {
		t.Errorf("alignment = %g out of range", a)
	}
	if _, err := s.Alignment(m, "nosuch"); err == nil {
		t.Error("unknown phase accepted")
	}
	// A 1:1 mapping has a single slot, so alignment is trivially 1.
	w, _ := workload.ByName("fft16")
	c, _ := w.Compile(nil)
	res, err := core.Map(core.Request{Compiled: c, Net: topology.Hypercube(4)})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Build(res.Mapping)
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := s2.Alignment(res.Mapping, "stage0")
	if a2 != 1 {
		t.Errorf("1:1 alignment = %g, want 1", a2)
	}
}

// Alignment of the partner-aware schedule should not be worse than a
// naive id-ordered slot assignment.
func TestAlignmentBeatsNaive(t *testing.T) {
	m := mappedNBody(t, 31) // denser multiplexing on hypercube(3)? need new mapping
	w, _ := workload.ByName("nbody")
	c, _ := w.Compile(map[string]int{"n": 31, "s": 1})
	res, err := core.Map(core.Request{Compiled: c, Net: topology.Hypercube(3)})
	if err != nil {
		t.Fatal(err)
	}
	m = res.Mapping
	s, err := Build(m)
	if err != nil {
		t.Fatal(err)
	}
	naive := naiveSchedule(m)
	for _, phase := range []string{"ring", "chordal"} {
		smart, _ := s.Alignment(m, phase)
		base := naiveAlignment(m, naive, phase)
		if smart < base {
			t.Errorf("phase %s: partner-aware alignment %.3f worse than naive %.3f", phase, smart, base)
		}
	}
}

// naiveSchedule assigns each processor's tasks to slots in task-id
// order.
func naiveSchedule(m *mapping.Mapping) []int {
	slot := make([]int, m.Graph.NumTasks)
	next := make([]int, m.Net.N)
	for t := 0; t < m.Graph.NumTasks; t++ {
		p := m.ProcOf(t)
		slot[t] = next[p]
		next[p]++
	}
	return slot
}

func naiveAlignment(m *mapping.Mapping, slot []int, phaseName string) float64 {
	p := m.Graph.CommPhaseByName(phaseName)
	aligned, total := 0, 0
	for _, e := range p.Edges {
		if e.From == e.To || m.ProcOf(e.From) == m.ProcOf(e.To) {
			continue
		}
		total++
		if slot[e.From] == slot[e.To] {
			aligned++
		}
	}
	if total == 0 {
		return 1
	}
	return float64(aligned) / float64(total)
}
