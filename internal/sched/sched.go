// Package sched implements the scheduling extension sketched in the
// paper's Section 6 ("Ongoing and Future Work"): task synchrony sets —
// sets of tasks, one per processor, that should execute at the same
// time — and per-processor local scheduling directives expressed in a
// path-expression-like notation (after Campbell & Habermann's path
// expressions, the notation the paper cites).
//
// Synchronous computations step through their phases in lock step; when
// contraction places several tasks on one processor, the processor must
// multiplex them. Identifying synchrony sets lets each processor order
// its local tasks so that communication partners execute in matching
// slots, which shortens the critical path of each communication phase.
package sched

import (
	"fmt"
	"sort"
	"strings"

	"oregami/internal/graph"
	"oregami/internal/mapping"
)

// SynchronySet is one slot of the lock-step schedule: at most one task
// per processor, executing simultaneously across the machine.
type SynchronySet []int

// Schedule is the full local-scheduling solution for a mapping.
type Schedule struct {
	// Sets are the synchrony sets in execution order. Every task
	// appears in exactly one set.
	Sets []SynchronySet
	// SlotOf[t] is the index of the set containing task t.
	SlotOf []int
	// Local[p] lists processor p's tasks in slot order.
	Local [][]int
}

// Build computes synchrony sets for a contracted and embedded mapping.
// Slots are filled greedily: within each processor, tasks are ordered to
// align communication partners — a task prefers the slot its partners
// occupy (computed over the collapsed task graph), falling back to the
// first free slot. The number of sets equals the maximum tasks per
// processor.
func Build(m *mapping.Mapping) (*Schedule, error) {
	if m.Part == nil || m.Place == nil {
		return nil, fmt.Errorf("sched: mapping is not contracted/embedded")
	}
	n := m.Graph.NumTasks
	local := make([][]int, m.Net.N)
	for t := 0; t < n; t++ {
		p := m.ProcOf(t)
		local[p] = append(local[p], t)
	}
	slots := 0
	for _, ts := range local {
		if len(ts) > slots {
			slots = len(ts)
		}
	}
	adj := m.Graph.Undirected()
	slotOf := make([]int, n)
	for i := range slotOf {
		slotOf[i] = -1
	}
	// Process processors by descending load so the busiest ones anchor
	// the slot structure; within a processor, heaviest communicators
	// first.
	procOrder := make([]int, m.Net.N)
	for i := range procOrder {
		procOrder[i] = i
	}
	sort.SliceStable(procOrder, func(a, b int) bool {
		return len(local[procOrder[a]]) > len(local[procOrder[b]])
	})
	for _, p := range procOrder {
		tasks := append([]int(nil), local[p]...)
		sort.SliceStable(tasks, func(a, b int) bool {
			return weightOf(adj, tasks[a]) > weightOf(adj, tasks[b])
		})
		used := make([]bool, slots)
		var unplaced []int
		for _, t := range tasks {
			// Prefer the slot where t's partners already sit, weighted
			// by communication volume.
			votes := make([]float64, slots)
			for _, nb := range adj[t] {
				if s := slotOf[nb.To]; s >= 0 {
					votes[s] += nb.Weight
				}
			}
			best, bestV := -1, 0.0
			for s := 0; s < slots; s++ {
				if used[s] {
					continue
				}
				if best == -1 || votes[s] > bestV {
					best, bestV = s, votes[s]
				}
			}
			if best == -1 || bestV == 0 {
				// No informative vote: defer to fill gaps in order.
				unplaced = append(unplaced, t)
				continue
			}
			slotOf[t] = best
			used[best] = true
		}
		next := 0
		for _, t := range unplaced {
			for used[next] {
				next++
			}
			slotOf[t] = next
			used[next] = true
		}
	}
	sched := &Schedule{SlotOf: slotOf, Sets: make([]SynchronySet, slots), Local: make([][]int, m.Net.N)}
	for t := 0; t < n; t++ {
		sched.Sets[slotOf[t]] = append(sched.Sets[slotOf[t]], t)
	}
	for s := range sched.Sets {
		sort.Ints(sched.Sets[s])
	}
	for p := 0; p < m.Net.N; p++ {
		byslot := append([]int(nil), local[p]...)
		sort.Slice(byslot, func(a, b int) bool { return slotOf[byslot[a]] < slotOf[byslot[b]] })
		sched.Local[p] = byslot
	}
	if err := sched.validate(m); err != nil {
		return nil, err
	}
	return sched, nil
}

func weightOf(adj [][]graph.WeightedNeighbor, t int) float64 {
	var w float64
	for _, nb := range adj[t] {
		w += nb.Weight
	}
	return w
}

// validate checks the synchrony-set invariants: every task in exactly
// one set, and no set holds two tasks of one processor.
func (s *Schedule) validate(m *mapping.Mapping) error {
	seen := make([]bool, m.Graph.NumTasks)
	for si, set := range s.Sets {
		procs := make(map[int]int)
		for _, t := range set {
			if seen[t] {
				return fmt.Errorf("sched: task %d in two sets", t)
			}
			seen[t] = true
			p := m.ProcOf(t)
			if prev, dup := procs[p]; dup {
				return fmt.Errorf("sched: set %d holds tasks %d and %d on processor %d", si, prev, t, p)
			}
			procs[p] = t
		}
	}
	for t, ok := range seen {
		if !ok {
			return fmt.Errorf("sched: task %d unscheduled", t)
		}
	}
	return nil
}

// Directive renders processor p's local schedule as a path expression:
// the allowed multiplexing of its tasks, repeated per outer iteration,
// e.g. "path (t1 ; t9)* end". Tasks appear in synchrony-slot order.
func (s *Schedule) Directive(m *mapping.Mapping, p int) string {
	if len(s.Local[p]) == 0 {
		return "path eps end"
	}
	parts := make([]string, len(s.Local[p]))
	for i, t := range s.Local[p] {
		parts[i] = "t" + m.Graph.Labels[t]
	}
	return "path (" + strings.Join(parts, " ; ") + ")* end"
}

// Render prints all synchrony sets and per-processor directives.
func (s *Schedule) Render(m *mapping.Mapping) string {
	var b strings.Builder
	for i, set := range s.Sets {
		fmt.Fprintf(&b, "synchrony set %d:", i)
		for _, t := range set {
			fmt.Fprintf(&b, " %s@p%d", m.Graph.Labels[t], m.ProcOf(t))
		}
		b.WriteByte('\n')
	}
	for p := 0; p < m.Net.N; p++ {
		fmt.Fprintf(&b, "proc %3d: %s\n", p, s.Directive(m, p))
	}
	return b.String()
}

// Alignment scores how well a communication phase lines up with the
// synchrony sets: the fraction of interprocessor edges whose endpoints
// share a slot (those transfers need no cross-slot buffering). Higher is
// better; 1.0 means perfectly aligned.
func (s *Schedule) Alignment(m *mapping.Mapping, phaseName string) (float64, error) {
	p := m.Graph.CommPhaseByName(phaseName)
	if p == nil {
		return 0, fmt.Errorf("sched: unknown phase %q", phaseName)
	}
	aligned, total := 0, 0
	for _, e := range p.Edges {
		if e.From == e.To || m.ProcOf(e.From) == m.ProcOf(e.To) {
			continue
		}
		total++
		if s.SlotOf[e.From] == s.SlotOf[e.To] {
			aligned++
		}
	}
	if total == 0 {
		return 1, nil
	}
	return float64(aligned) / float64(total), nil
}
