package check

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"

	"oregami/internal/mapping"
)

// Fingerprint serializes everything the pipeline decides — partition,
// placement, method, and every route in sorted phase order — into one
// stable string. Two runs of the pipeline on the same inputs must produce
// identical fingerprints; the determinism tests run every seed twice and
// diff the fingerprints to catch map-iteration-order leaks.
func Fingerprint(m *mapping.Mapping) string {
	if m == nil {
		return "<nil mapping>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "method=%s\npart=%v\nplace=%v\n", m.Method, m.Part, m.Place)
	phases := make([]string, 0, len(m.Routes))
	for name := range m.Routes {
		phases = append(phases, name)
	}
	sort.Strings(phases)
	for _, name := range phases {
		fmt.Fprintf(&b, "routes[%s]=", name)
		for i, r := range m.Routes[name] {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%v", []int(r))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FingerprintHash returns the hex SHA-256 digest of Fingerprint(m): the
// compact form served to clients and stored alongside cached mappings so
// a cache hit can be integrity-checked against the full recomputed
// fingerprint without holding the long string.
func FingerprintHash(m *mapping.Mapping) string {
	sum := sha256.Sum256([]byte(Fingerprint(m)))
	return fmt.Sprintf("%x", sum[:])
}
