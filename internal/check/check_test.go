package check_test

import (
	"strings"
	"testing"

	"oregami/internal/check"
	"oregami/internal/core"
	"oregami/internal/graph"
	"oregami/internal/mapping"
	"oregami/internal/metrics"
	"oregami/internal/topology"
	"oregami/internal/workload"
)

// pipelineMapping runs the real MAPPER pipeline on a random 16-task
// graph over a 3-cube and returns every artifact the oracle consumes.
// Seed 7 is fixed: 16 tasks on 8 processors guarantees contraction and
// interprocessor routes, so every corruption below has material to break.
func pipelineMapping(t *testing.T) (*graph.TaskGraph, *topology.Network, *mapping.Mapping, *metrics.Report) {
	t.Helper()
	g := workload.RandomTaskGraph(16, 0.35, 4, 7)
	net := topology.Hypercube(3)
	res, err := core.MapGraph(g, net, core.ClassArbitrary)
	if err != nil {
		t.Fatalf("pipeline failed: %v", err)
	}
	rep, err := metrics.Compute(res.Mapping)
	if err != nil {
		t.Fatalf("metrics failed: %v", err)
	}
	return g, net, res.Mapping, rep
}

func hasKind(vs []check.Violation, k check.Kind) bool {
	for _, v := range vs {
		if v.Kind == k {
			return true
		}
	}
	return false
}

// longestRoute returns the phase name and edge index of the longest
// route in the mapping (there must be one: 16 tasks on 8 processors).
func longestRoute(t *testing.T, m *mapping.Mapping) (string, int) {
	t.Helper()
	bestPhase, bestEdge, bestLen := "", -1, 0
	for _, p := range m.Graph.Comm {
		for i, r := range m.Routes[p.Name] {
			if len(r) > bestLen {
				bestPhase, bestEdge, bestLen = p.Name, i, len(r)
			}
		}
	}
	if bestEdge < 0 {
		t.Fatal("pipeline produced no interprocessor routes; corruption tests need one")
	}
	return bestPhase, bestEdge
}

func TestCleanPipelinePasses(t *testing.T) {
	g, net, m, rep := pipelineMapping(t)
	if vs := check.Verify(g, net, m, rep); len(vs) > 0 {
		t.Fatalf("oracle rejected a pipeline mapping:\n%s", check.Render(vs))
	}
}

func TestDetectsWrongPartition(t *testing.T) {
	g, net, m, _ := pipelineMapping(t)
	m.Part[0] = m.NumClusters() + 3 // sparse cluster ids: 3 empty clusters
	vs := check.VerifyMapping(g, net, m)
	if !hasKind(vs, check.KindPartition) {
		t.Fatalf("corrupted partition not detected; got:\n%s", check.Render(vs))
	}
}

func TestDetectsNonInjectiveEmbedding(t *testing.T) {
	g, net, m, _ := pipelineMapping(t)
	m.Place[1] = m.Place[0]
	vs := check.VerifyMapping(g, net, m)
	if !hasKind(vs, check.KindEmbedding) {
		t.Fatalf("non-injective embedding not detected; got:\n%s", check.Render(vs))
	}
}

func TestDetectsBrokenWalk(t *testing.T) {
	g, net, m, _ := pipelineMapping(t)
	phase, edge := longestRoute(t, m)
	r := m.Routes[phase][edge]
	m.Routes[phase][edge] = r[:len(r)-1] // walk no longer reaches the destination
	vs := check.VerifyMapping(g, net, m)
	if !hasKind(vs, check.KindWalk) {
		t.Fatalf("broken walk not detected; got:\n%s", check.Render(vs))
	}
}

func TestDetectsDeadLink(t *testing.T) {
	g, net, m, _ := pipelineMapping(t)
	phase, edge := longestRoute(t, m)
	used := m.Routes[phase][edge][0]
	degraded, err := net.Masked(nil, []int{used})
	if err != nil {
		t.Fatalf("Masked: %v", err)
	}
	vs := check.VerifyMapping(g, degraded, m)
	if !hasKind(vs, check.KindDeadLink) {
		t.Fatalf("route over failed link %d not detected; got:\n%s", used, check.Render(vs))
	}
}

func TestDetectsPhaseLinkConflict(t *testing.T) {
	g, net, m, _ := pipelineMapping(t)
	phase, edge := longestRoute(t, m)
	r := m.Routes[phase][edge]
	// Bounce over the final link twice more: the walk still ends at the
	// destination, but the link is now assigned three times to one message.
	last := r[len(r)-1]
	m.Routes[phase][edge] = append(append(topology.Route{}, r...), last, last)
	vs := check.VerifyMapping(g, net, m)
	if !hasKind(vs, check.KindPhaseConflict) {
		t.Fatalf("duplicate link assignment not detected; got:\n%s", check.Render(vs))
	}
	if hasKind(vs, check.KindWalk) {
		t.Fatalf("bounce walk is contiguous and should not be a walk violation:\n%s", check.Render(vs))
	}
}

func TestDetectsMetricMismatch(t *testing.T) {
	g, net, m, rep := pipelineMapping(t)
	rep.TotalIPC++
	rep.Load.Imbalance *= 2
	if len(rep.Links) > 0 && len(rep.Links[0].ContentionPerLink) > 0 {
		rep.Links[0].ContentionPerLink[0] += 5
	}
	vs := check.VerifyMetrics(g, net, m, rep)
	if !hasKind(vs, check.KindMetrics) {
		t.Fatalf("metric mismatch not detected; got:\n%s", check.Render(vs))
	}
	if n := len(vs); n < 3 {
		t.Fatalf("expected all 3 corrupted values flagged, got %d:\n%s", n, check.Render(vs))
	}
}

func TestMetricsUnrecomputableOnBrokenMapping(t *testing.T) {
	g, net, m, rep := pipelineMapping(t)
	m.Part = m.Part[:len(m.Part)-1]
	vs := check.VerifyMetrics(g, net, m, rep)
	if !hasKind(vs, check.KindMetrics) {
		t.Fatalf("expected a not-recomputable violation, got:\n%s", check.Render(vs))
	}
}

func TestVerifyNilArguments(t *testing.T) {
	if vs := check.VerifyMapping(nil, nil, nil); len(vs) == 0 {
		t.Fatal("nil arguments must be a violation, not a pass")
	}
	if vs := check.VerifyMetrics(nil, nil, nil, nil); len(vs) == 0 {
		t.Fatal("nil arguments must be a violation, not a pass")
	}
}

func TestRenderAndError(t *testing.T) {
	vs := []check.Violation{
		{Kind: check.KindPartition, Detail: "task 0 unassigned"},
		{Kind: check.KindWalk, Phase: "shift", Detail: "edge 3 route ends early"},
	}
	got := check.Render(vs)
	want := "check: partition: task 0 unassigned\n" +
		"check: walk: phase \"shift\": edge 3 route ends early\n"
	if got != want {
		t.Fatalf("Render mismatch:\n got %q\nwant %q", got, want)
	}
	err := &check.ViolationError{Violations: vs}
	if !strings.Contains(err.Error(), "2 violation(s)") {
		t.Fatalf("ViolationError.Error misses the count: %q", err.Error())
	}
	if check.Render(nil) != "" {
		t.Fatal("empty violation list must render empty")
	}
}

func TestFingerprintStable(t *testing.T) {
	_, _, m, _ := pipelineMapping(t)
	a, b := check.Fingerprint(m), check.Fingerprint(m.Clone())
	if a != b {
		t.Fatalf("fingerprint of a clone differs:\n%s\nvs\n%s", a, b)
	}
	m2 := m.Clone()
	m2.Part[0] = m2.Part[1]
	if check.Fingerprint(m) == check.Fingerprint(m2) {
		t.Fatal("fingerprint ignores the partition")
	}
	if check.Fingerprint(nil) == "" {
		t.Fatal("nil mapping fingerprint must be non-empty and distinct")
	}
}

func TestUnknownPhaseRoutes(t *testing.T) {
	g, net, m, _ := pipelineMapping(t)
	m.Routes["ghost"] = []topology.Route{{0}}
	vs := check.VerifyMapping(g, net, m)
	if !hasKind(vs, check.KindWalk) {
		t.Fatalf("routes for an undeclared phase not detected; got:\n%s", check.Render(vs))
	}
}
