package check_test

import (
	"testing"

	"oregami/internal/check"
	"oregami/internal/core"
	"oregami/internal/mapping"
	"oregami/internal/metrics"
	"oregami/internal/topology"
	"oregami/internal/workload"
)

// FuzzVerifyMapping drives the oracle with byte-derived adversarial
// mappings over a fixed small graph and network. The property is pure
// robustness: VerifyMapping, VerifyMetrics, and Verify never panic, no
// matter how malformed the mapping is — the oracle's whole job is to
// judge broken states, so it must not crash on them.
func FuzzVerifyMapping(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 250, 251, 252, 253, 254, 255})
	f.Add([]byte{128, 7, 7, 7, 0, 0, 0, 0, 1, 200, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := workload.RandomTaskGraph(8, 0.4, 3, 2)
		net := topology.Hypercube(3)

		next := func() int {
			if len(data) == 0 {
				return 0
			}
			v := int(int8(data[0]))
			data = data[1:]
			return v
		}

		// Start from a real pipeline mapping when available so byte
		// corruptions reach deep states; fall back to an empty shell.
		// The report is computed before corruption (metrics.Compute
		// assumes a structurally sound mapping) and then corrupted
		// independently.
		var m *mapping.Mapping
		var rep *metrics.Report
		if res, err := core.MapGraph(g, net, core.ClassArbitrary); err == nil {
			m = res.Mapping
			rep, _ = metrics.Compute(m)
		} else {
			m = mapping.New(g, net)
		}

		// Corrupt the partition and embedding.
		for i := range m.Part {
			if next()%3 == 0 {
				m.Part[i] = next()
			}
		}
		if n := next() % 4; n == 0 {
			m.Part = m.Part[:len(m.Part)/2]
		} else if n == 1 {
			m.Part = nil
		}
		for i := range m.Place {
			if next()%3 == 0 {
				m.Place[i] = next()
			}
		}
		if next()%5 == 0 {
			m.Place = nil
		}

		// Corrupt routes: drop links, retarget them, truncate walks,
		// duplicate entries, and add an unknown phase.
		for name, routes := range m.Routes {
			for k := range routes {
				switch next() % 4 {
				case 0:
					for j := range routes[k] {
						routes[k][j] = next()
					}
				case 1:
					if len(routes[k]) > 0 {
						routes[k] = routes[k][:len(routes[k])-1]
					}
				case 2:
					routes[k] = append(routes[k], next())
				}
			}
			m.Routes[name] = routes
		}
		if next()%3 == 0 {
			m.Routes["ghost"] = []topology.Route{{next(), next()}}
		}
		if next()%7 == 0 {
			m.Routes = nil
		}

		// Corrupt the report the oracle cross-checks against.
		if rep != nil {
			if next()%3 == 0 {
				rep.TotalIPC = float64(next())
			}
			if next()%3 == 0 {
				rep.Load.Imbalance = float64(next())
			}
			if next()%3 == 0 && len(rep.Load.TasksPerProc) > 0 {
				rep.Load.TasksPerProc[0] = next()
			}
			if next()%5 == 0 {
				rep = nil
			}
		}

		// A degraded network sometimes, so dead-link paths are hit.
		vnet := net
		if next()%2 == 0 {
			if masked, err := net.Masked([]int{1}, []int{0, 3}); err == nil {
				vnet = masked
			}
		}

		_ = check.VerifyMapping(g, vnet, m)
		_ = check.VerifyMetrics(g, vnet, m, rep)
		_ = check.Verify(g, vnet, m, rep)
		_ = check.Verify(nil, nil, nil, nil)
		_ = check.Fingerprint(m)
	})
}
