// Package check is the mapping oracle: a complete post-condition
// verifier for the MAPPER pipeline. Where mapping.Validate stops at
// structural consistency, VerifyMapping accumulates *every* violated
// invariant of a finished mapping — partition coverage, embedding
// injectivity into live processors, route walkability over live links,
// per-phase link-assignment conflicts — and VerifyMetrics independently
// recomputes the METRICS quantities to catch arithmetic drift in hot-path
// refactors. The oracle never panics, even on adversarial mappings, and
// renders violations as a stable, diffable report (like vet diagnostics).
package check

import (
	"fmt"
	"sort"
	"strings"

	"oregami/internal/graph"
	"oregami/internal/mapping"
	"oregami/internal/topology"
)

// Kind is a stable machine-readable violation class. Each kind names one
// invariant of a finished mapping; the corruption tests exercise one
// seeded corruption per kind.
type Kind string

const (
	// KindPartition: some task is not in exactly one cluster, cluster
	// ids are not dense, or the cluster count exceeds live processors.
	KindPartition Kind = "partition"
	// KindEmbedding: the cluster -> processor map is not an injection
	// into the live processors.
	KindEmbedding Kind = "embedding"
	// KindWalk: a routed path is not a contiguous walk from the
	// sender's processor to the receiver's processor.
	KindWalk Kind = "walk"
	// KindDeadLink: a routed path traverses a failed link (directly or
	// through a failed endpoint processor).
	KindDeadLink Kind = "dead-link"
	// KindPhaseConflict: one phase assigns the same link twice to a
	// single message — a wasteful cycle MM-Route never produces.
	KindPhaseConflict Kind = "phase-conflict"
	// KindMetrics: a reported METRICS value disagrees with independent
	// recomputation.
	KindMetrics Kind = "metrics"
)

// Violation is one broken invariant. Phase is the communication phase
// when the invariant is phase-scoped, "" otherwise.
type Violation struct {
	Kind   Kind
	Phase  string
	Detail string
}

func (v Violation) String() string {
	if v.Phase != "" {
		return fmt.Sprintf("%s: phase %q: %s", v.Kind, v.Phase, v.Detail)
	}
	return fmt.Sprintf("%s: %s", v.Kind, v.Detail)
}

// Render formats violations one per line in their stable emission order
// (tasks ascending, phases in declaration order), prefixed "check:". An
// empty slice renders as "".
func Render(vs []Violation) string {
	var b strings.Builder
	for _, v := range vs {
		b.WriteString("check: ")
		b.WriteString(v.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// ViolationError wraps a non-empty violation list as an error, so the
// dispatcher can fail a checked pipeline with the full report attached.
type ViolationError struct {
	Violations []Violation
}

func (e *ViolationError) Error() string {
	return fmt.Sprintf("mapping verification failed with %d violation(s):\n%s",
		len(e.Violations), strings.TrimRight(Render(e.Violations), "\n"))
}

// VerifyMapping verifies every structural post-condition of a mapping of
// desc onto net and returns all violations found (nil when the mapping is
// valid). It never panics: adversarial Part/Place/Routes contents are
// reported, not indexed blindly.
//
// Invariants checked:
//   - every task of desc is in exactly one cluster, cluster ids are
//     dense 0..k-1 with no empty cluster, and k <= live processors;
//   - the embedding is an injection of clusters into live processors;
//   - every routed phase has one route per edge; every route is a
//     contiguous walk over live links from the sender's processor to the
//     receiver's processor; intraprocessor edges have empty routes;
//   - no route assigns the same link twice within its phase.
func VerifyMapping(desc *graph.TaskGraph, net *topology.Network, m *mapping.Mapping) []Violation {
	var vs []Violation
	add := func(kind Kind, phase, format string, args ...interface{}) {
		vs = append(vs, Violation{Kind: kind, Phase: phase, Detail: fmt.Sprintf(format, args...)})
	}
	if desc == nil || net == nil || m == nil {
		add(KindPartition, "", "incomplete verification request (desc/net/mapping missing)")
		return vs
	}

	// --- Contraction: every task in exactly one cluster ------------------
	partOK := true
	k := 0
	if m.Part == nil {
		add(KindPartition, "", "mapping has no contraction (Part is nil)")
		partOK = false
	} else {
		if len(m.Part) != desc.NumTasks {
			add(KindPartition, "", "Part covers %d of %d tasks", len(m.Part), desc.NumTasks)
			partOK = false
		}
		for _, c := range m.Part {
			if c >= k {
				k = c + 1
			}
		}
		populated := make([]bool, k)
		for t, c := range m.Part {
			if c < 0 {
				add(KindPartition, "", "task %d has negative cluster %d", t, c)
				partOK = false
				continue
			}
			populated[c] = true
		}
		for c := 0; c < k; c++ {
			if !populated[c] {
				add(KindPartition, "", "cluster %d is empty (ids not dense)", c)
				partOK = false
			}
		}
		if live := net.NumLive(); k > live {
			add(KindPartition, "", "%d clusters exceed %d live processors", k, live)
		}
	}

	// --- Embedding: injective into live processors -----------------------
	placeOK := m.Place != nil
	if m.Place == nil {
		add(KindEmbedding, "", "mapping has no embedding (Place is nil)")
	} else {
		if len(m.Place) != k {
			add(KindEmbedding, "", "Place covers %d of %d clusters", len(m.Place), k)
			placeOK = false
		}
		host := make(map[int]int, len(m.Place))
		for c, p := range m.Place {
			switch {
			case p < 0 || p >= net.N:
				add(KindEmbedding, "", "cluster %d on processor %d out of range 0..%d", c, p, net.N-1)
				placeOK = false
			case !net.Alive(p):
				add(KindEmbedding, "", "cluster %d on failed processor %d", c, p)
			default:
				if prev, dup := host[p]; dup {
					add(KindEmbedding, "", "clusters %d and %d share processor %d (not injective)", prev, c, p)
				} else {
					host[p] = c
				}
			}
		}
	}

	procOf := func(t int) int { return safeProc(net, m, t) }

	// --- Routing: contiguous live walks, conflict-free per phase ---------
	for _, p := range desc.Comm {
		routes, routed := m.Routes[p.Name]
		if !routed {
			continue
		}
		if len(routes) != len(p.Edges) {
			add(KindWalk, p.Name, "%d routes for %d edges", len(routes), len(p.Edges))
			continue
		}
		for i, e := range p.Edges {
			src, dst := procOf(e.From), procOf(e.To)
			if src < 0 || dst < 0 {
				if partOK && placeOK {
					add(KindWalk, p.Name, "edge %d endpoints unmapped", i)
				}
				continue
			}
			route := routes[i]
			if src == dst {
				if len(route) != 0 {
					add(KindWalk, p.Name, "edge %d (%d->%d) is intraprocessor but has a %d-link route",
						i, e.From, e.To, len(route))
				}
				continue
			}
			at := src
			walkOK := true
			seen := make(map[int]bool, len(route))
			for hop, id := range route {
				if id < 0 || id >= net.NumLinks() {
					add(KindWalk, p.Name, "edge %d hop %d: link %d out of range", i, hop, id)
					walkOK = false
					break
				}
				if !net.LinkAlive(id) {
					add(KindDeadLink, p.Name, "edge %d hop %d traverses failed link %d", i, hop, id)
				}
				if seen[id] {
					add(KindPhaseConflict, p.Name, "edge %d assigns link %d twice", i, id)
				}
				seen[id] = true
				l := net.Link(id)
				switch at {
				case l.A:
					at = l.B
				case l.B:
					at = l.A
				default:
					add(KindWalk, p.Name, "edge %d hop %d: link %d (%d-%d) does not touch processor %d",
						i, hop, id, l.A, l.B, at)
					walkOK = false
				}
				if !walkOK {
					break
				}
			}
			if walkOK && at != dst {
				add(KindWalk, p.Name, "edge %d route ends at processor %d, not %d", i, at, dst)
			}
		}
	}
	// Routes for phases the description does not declare.
	var unknown []string
	for name := range m.Routes {
		if desc.CommPhaseByName(name) == nil {
			unknown = append(unknown, name)
		}
	}
	sort.Strings(unknown)
	for _, name := range unknown {
		add(KindWalk, name, "routes for a phase the task graph does not declare")
	}
	return vs
}

// safeProc computes a task's processor defensively: -1 when any index on
// the way is out of range, so checks can skip instead of panicking.
func safeProc(net *topology.Network, m *mapping.Mapping, t int) int {
	if m.Part == nil || t < 0 || t >= len(m.Part) {
		return -1
	}
	c := m.Part[t]
	if c < 0 || m.Place == nil || c >= len(m.Place) {
		return -1
	}
	p := m.Place[c]
	if p < 0 || p >= net.N {
		return -1
	}
	return p
}
