package check

import (
	"fmt"

	"oregami/internal/graph"
	"oregami/internal/mapping"
	"oregami/internal/metrics"
	"oregami/internal/topology"
)

// VerifyMetrics independently recomputes the METRICS quantities for a
// mapping and compares them to a reported bundle, returning one
// KindMetrics violation per disagreement. The recomputation deliberately
// shares no code with metrics.Compute but follows the same iteration
// order (phases in declaration order, edges in declaration order, links
// in route order), so floating-point sums are bit-identical and the
// comparison can demand exact equality.
//
// A structurally broken mapping (as reported by VerifyMapping) cannot be
// recomputed; VerifyMetrics then returns a single violation saying so
// rather than panicking.
func VerifyMetrics(desc *graph.TaskGraph, net *topology.Network, m *mapping.Mapping, rep *metrics.Report) []Violation {
	var vs []Violation
	add := func(format string, args ...interface{}) {
		vs = append(vs, Violation{Kind: KindMetrics, Detail: fmt.Sprintf(format, args...)})
	}
	addPhase := func(phase, format string, args ...interface{}) {
		vs = append(vs, Violation{Kind: KindMetrics, Phase: phase, Detail: fmt.Sprintf(format, args...)})
	}
	if desc == nil || net == nil || m == nil || rep == nil {
		add("incomplete verification request (desc/net/mapping/report missing)")
		return vs
	}
	if !recomputable(desc, net, m) {
		add("mapping is structurally invalid; metrics cannot be recomputed")
		return vs
	}

	// --- Load metrics -----------------------------------------------------
	tasks := make([]int, net.N)
	exec := make([]float64, net.N)
	for t := 0; t < desc.NumTasks; t++ {
		tasks[safeProc(net, m, t)]++
	}
	for _, ep := range desc.Exec {
		if ep.Cost != nil && len(ep.Cost) != desc.NumTasks {
			add("exec phase %q has %d costs for %d tasks; load not recomputable",
				ep.Name, len(ep.Cost), desc.NumTasks)
			return vs
		}
		for t := 0; t < desc.NumTasks; t++ {
			exec[safeProc(net, m, t)] += ep.TaskCost(t)
		}
	}
	var sum, max float64
	for _, c := range exec {
		sum += c
		if c > max {
			max = c
		}
	}
	imbalance := 1.0
	if sum > 0 {
		imbalance = max * float64(net.N) / sum
	}
	if !equalInts(rep.Load.TasksPerProc, tasks) {
		add("TasksPerProc reported %v, recomputed %v", rep.Load.TasksPerProc, tasks)
	}
	if !equalFloats(rep.Load.ExecPerProc, exec) {
		add("ExecPerProc reported %v, recomputed %v", rep.Load.ExecPerProc, exec)
	}
	if rep.Load.Imbalance != imbalance {
		add("load imbalance reported %v, recomputed %v", rep.Load.Imbalance, imbalance)
	}

	// --- Per-phase link metrics and totals --------------------------------
	if len(rep.Links) != len(desc.Comm) {
		add("%d link-metric entries for %d communication phases", len(rep.Links), len(desc.Comm))
		return vs
	}
	var totalIPC, totalVolume float64
	for pi, p := range desc.Comm {
		lm := rep.Links[pi]
		if lm.Phase != p.Name {
			addPhase(p.Name, "link-metric entry %d is for phase %q", pi, lm.Phase)
			continue
		}
		vol := make([]float64, net.NumLinks())
		con := make([]int, net.NumLinks())
		maxContention, maxDilation := 0, 0
		hops, crossEdges := 0, 0
		routes, routed := m.Routes[p.Name]
		if routed && len(routes) != len(p.Edges) {
			addPhase(p.Name, "%d routes for %d edges; link metrics not recomputable", len(routes), len(p.Edges))
			continue
		}
		for i, e := range p.Edges {
			if e.From != e.To {
				totalVolume += e.Weight
			}
			if safeProc(net, m, e.From) == safeProc(net, m, e.To) {
				continue
			}
			crossEdges++
			totalIPC += e.Weight
			if !routed {
				continue
			}
			route := routes[i]
			hops += len(route)
			if len(route) > maxDilation {
				maxDilation = len(route)
			}
			for _, id := range route {
				if id < 0 || id >= net.NumLinks() {
					continue // walk violation; reported by VerifyMapping
				}
				vol[id] += e.Weight
				con[id]++
				if con[id] > maxContention {
					maxContention = con[id]
				}
			}
		}
		avgDilation := 0.0
		if crossEdges > 0 && routed {
			avgDilation = float64(hops) / float64(crossEdges)
		}
		if !equalFloats(lm.VolumePerLink, vol) {
			addPhase(p.Name, "VolumePerLink reported %v, recomputed %v", lm.VolumePerLink, vol)
		}
		if !equalInts(lm.ContentionPerLink, con) {
			addPhase(p.Name, "ContentionPerLink reported %v, recomputed %v", lm.ContentionPerLink, con)
		}
		if lm.MaxContention != maxContention {
			addPhase(p.Name, "max contention reported %d, recomputed %d", lm.MaxContention, maxContention)
		}
		if lm.MaxDilation != maxDilation {
			addPhase(p.Name, "max dilation reported %d, recomputed %d", lm.MaxDilation, maxDilation)
		}
		if lm.AvgDilation != avgDilation {
			addPhase(p.Name, "avg dilation reported %v, recomputed %v", lm.AvgDilation, avgDilation)
		}
	}
	if rep.TotalIPC != totalIPC {
		add("total IPC reported %v, recomputed %v", rep.TotalIPC, totalIPC)
	}
	if rep.TotalVolume != totalVolume {
		add("total volume reported %v, recomputed %v", rep.TotalVolume, totalVolume)
	}
	return vs
}

// Verify runs the full oracle: structural post-conditions, and — when a
// report is supplied — metrics recomputation. It is what core.Map runs
// behind Request.Check.
func Verify(desc *graph.TaskGraph, net *topology.Network, m *mapping.Mapping, rep *metrics.Report) []Violation {
	vs := VerifyMapping(desc, net, m)
	if rep != nil {
		vs = append(vs, VerifyMetrics(desc, net, m, rep)...)
	}
	return vs
}

// recomputable reports whether every task resolves to an in-range
// processor, the precondition for replaying the metrics arithmetic.
func recomputable(desc *graph.TaskGraph, net *topology.Network, m *mapping.Mapping) bool {
	if m.Part == nil || m.Place == nil || len(m.Part) != desc.NumTasks {
		return false
	}
	for t := 0; t < desc.NumTasks; t++ {
		if safeProc(net, m, t) < 0 {
			return false
		}
	}
	for _, p := range desc.Comm {
		for _, e := range p.Edges {
			if e.From < 0 || e.From >= desc.NumTasks || e.To < 0 || e.To >= desc.NumTasks {
				return false
			}
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
