// Package check_test (external): the test maps a workload through
// internal/core, which itself imports internal/check, so an in-package
// test would be an import cycle.
package check_test

import (
	"testing"

	"oregami/internal/check"
	"oregami/internal/core"
	"oregami/internal/topology"
	"oregami/internal/workload"
)

func TestFingerprintHashStableAndSensitive(t *testing.T) {
	w, err := workload.ByName("nbody")
	if err != nil {
		t.Fatal(err)
	}
	c, err := w.Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Map(core.Request{Compiled: c, Net: topology.Hypercube(3)})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Mapping
	h1 := check.FingerprintHash(m)
	h2 := check.FingerprintHash(m)
	if h1 != h2 {
		t.Fatalf("FingerprintHash not deterministic: %s vs %s", h1, h2)
	}
	if len(h1) != 64 {
		t.Fatalf("FingerprintHash length = %d, want 64 hex chars", len(h1))
	}
	// Any mutation of the decided state must change the digest: that is
	// the property the serving cache's integrity check depends on.
	clone := m.Clone()
	clone.Part[0] = (clone.Part[0] + 1) % clone.NumClusters()
	if check.FingerprintHash(clone) == h1 {
		t.Fatal("FingerprintHash unchanged after mutating Part")
	}
	if check.FingerprintHash(nil) != check.FingerprintHash(nil) {
		t.Fatal("nil fingerprint hash not stable")
	}
}
