package graph

import (
	"strings"
	"testing"
	"testing/quick"
)

// ringGraph builds the n-body ring phase: i -> (i+1) mod n.
func ringGraph(n int) *TaskGraph {
	g := New("ring", n)
	p := g.AddCommPhase("ring")
	for i := 0; i < n; i++ {
		g.AddEdge(p, i, (i+1)%n, 1)
	}
	return g
}

func TestNewLabels(t *testing.T) {
	g := New("g", 3)
	want := []string{"0", "1", "2"}
	for i, l := range g.Labels {
		if l != want[i] {
			t.Errorf("label[%d] = %q, want %q", i, l, want[i])
		}
	}
	if g.NumEdges() != 0 {
		t.Errorf("new graph has %d edges, want 0", g.NumEdges())
	}
}

func TestAddCommPhaseDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate comm phase did not panic")
		}
	}()
	g := New("g", 2)
	g.AddCommPhase("p")
	g.AddCommPhase("p")
}

func TestAddEdgeRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range edge did not panic")
		}
	}()
	g := New("g", 2)
	p := g.AddCommPhase("p")
	g.AddEdge(p, 0, 2, 1)
}

func TestPhaseLookup(t *testing.T) {
	g := New("g", 4)
	g.AddCommPhase("a")
	g.AddCommPhase("b")
	g.AddExecPhase("x", 2)
	if got := g.CommPhaseByName("b"); got == nil || got.Name != "b" {
		t.Errorf("CommPhaseByName(b) = %v", got)
	}
	if g.CommPhaseByName("zzz") != nil {
		t.Error("lookup of missing comm phase returned non-nil")
	}
	if got := g.ExecPhaseByName("x"); got == nil || got.Uniform != 2 {
		t.Errorf("ExecPhaseByName(x) = %v", got)
	}
	if g.ExecPhaseByName("a") != nil {
		t.Error("lookup of missing exec phase returned non-nil")
	}
}

func TestRingStructure(t *testing.T) {
	g := ringGraph(8)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 8 {
		t.Fatalf("ring(8) has %d edges, want 8", g.NumEdges())
	}
	if g.TotalVolume() != 8 {
		t.Errorf("TotalVolume = %g, want 8", g.TotalVolume())
	}
	for v := 0; v < 8; v++ {
		if d := g.Degree(v); d != 2 {
			t.Errorf("Degree(%d) = %d, want 2", v, d)
		}
	}
}

func TestCollapsedWeightsMergesDirections(t *testing.T) {
	g := New("g", 2)
	p := g.AddCommPhase("p")
	g.AddEdge(p, 0, 1, 3)
	g.AddEdge(p, 1, 0, 4)
	q := g.AddCommPhase("q")
	g.AddEdge(q, 0, 1, 5)
	w := g.CollapsedWeights()
	if len(w) != 1 {
		t.Fatalf("collapsed map has %d entries, want 1", len(w))
	}
	if got := w[[2]int{0, 1}]; got != 12 {
		t.Errorf("collapsed weight = %g, want 12", got)
	}
}

func TestCollapsedIgnoresSelfLoops(t *testing.T) {
	g := New("g", 2)
	p := g.AddCommPhase("p")
	g.AddEdge(p, 0, 0, 7)
	if len(g.CollapsedWeights()) != 0 {
		t.Error("self loop appeared in collapsed weights")
	}
}

func TestUndirectedSymmetry(t *testing.T) {
	g := ringGraph(5)
	adj := g.Undirected()
	for v := range adj {
		for _, nb := range adj[v] {
			found := false
			for _, back := range adj[nb.To] {
				if back.To == v && back.Weight == nb.Weight {
					found = true
				}
			}
			if !found {
				t.Errorf("edge %d->%d (w=%g) has no symmetric partner", v, nb.To, nb.Weight)
			}
		}
	}
}

func TestValidateCatchesBadCostVector(t *testing.T) {
	g := New("g", 3)
	e := g.AddExecPhase("x", 1)
	e.Cost = []float64{1, 2}
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted wrong-length cost vector")
	}
}

func TestExecPhaseCosts(t *testing.T) {
	g := New("g", 3)
	u := g.AddExecPhase("u", 2.5)
	if u.TaskCost(1) != 2.5 {
		t.Errorf("uniform TaskCost = %g", u.TaskCost(1))
	}
	if u.TotalExecCost(3) != 7.5 {
		t.Errorf("uniform TotalExecCost = %g", u.TotalExecCost(3))
	}
	c := g.AddExecPhase("c", 0)
	c.Cost = []float64{1, 2, 3}
	if c.TaskCost(2) != 3 {
		t.Errorf("vector TaskCost = %g", c.TaskCost(2))
	}
	if c.TotalExecCost(3) != 6 {
		t.Errorf("vector TotalExecCost = %g", c.TotalExecCost(3))
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := ringGraph(4)
	g.AddExecPhase("x", 1)
	c := g.Clone()
	c.Comm[0].Edges[0].Weight = 99
	c.Labels[0] = "mutated"
	if g.Comm[0].Edges[0].Weight == 99 {
		t.Error("clone shares edge storage with original")
	}
	if g.Labels[0] == "mutated" {
		t.Error("clone shares label storage with original")
	}
	if c.CommPhaseByName("ring") == nil || c.ExecPhaseByName("x") == nil {
		t.Error("clone lost phase indices")
	}
}

func TestIsNodeSymmetricCandidate(t *testing.T) {
	if !ringGraph(6).IsNodeSymmetricCandidate() {
		t.Error("ring should be a node-symmetric candidate")
	}
	g := New("star", 4)
	p := g.AddCommPhase("fan")
	for i := 1; i < 4; i++ {
		g.AddEdge(p, 0, i, 1)
	}
	if g.IsNodeSymmetricCandidate() {
		t.Error("star fan-out should not be a node-symmetric candidate")
	}
	empty := New("e", 3)
	if empty.IsNodeSymmetricCandidate() {
		t.Error("graph with no phases should not be a candidate")
	}
}

func TestPhasePermutation(t *testing.T) {
	g := ringGraph(5)
	img, ok := g.PhasePermutation(g.Comm[0])
	if !ok {
		t.Fatal("ring phase should be a bijection")
	}
	for i, to := range img {
		if to != (i+1)%5 {
			t.Errorf("img[%d] = %d, want %d", i, to, (i+1)%5)
		}
	}
	bad := New("b", 3)
	p := bad.AddCommPhase("p")
	bad.AddEdge(p, 0, 1, 1)
	bad.AddEdge(p, 0, 2, 1)
	bad.AddEdge(p, 1, 2, 1)
	if _, ok := bad.PhasePermutation(p); ok {
		t.Error("non-bijective phase reported as permutation")
	}
}

func TestComponents(t *testing.T) {
	g := New("two", 5)
	p := g.AddCommPhase("p")
	g.AddEdge(p, 0, 1, 1)
	g.AddEdge(p, 3, 4, 1)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3 (01, 2, 34)", len(comps))
	}
	if len(comps[0]) != 2 || len(comps[1]) != 1 || len(comps[2]) != 2 {
		t.Errorf("component sizes = %v", comps)
	}
}

func TestBFSDistancesRing(t *testing.T) {
	g := ringGraph(8)
	d := g.BFSDistances(0)
	want := []int{0, 1, 2, 3, 4, 3, 2, 1}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, d[i], want[i])
		}
	}
}

func TestBFSDistancesUnreachable(t *testing.T) {
	g := New("g", 3)
	p := g.AddCommPhase("p")
	g.AddEdge(p, 0, 1, 1)
	d := g.BFSDistances(0)
	if d[2] != -1 {
		t.Errorf("unreachable dist = %d, want -1", d[2])
	}
}

func TestEdgeCut(t *testing.T) {
	g := ringGraph(4) // edges 01,12,23,30 each weight 1
	cut := g.EdgeCut([]int{0, 0, 1, 1})
	if cut != 2 {
		t.Errorf("EdgeCut = %g, want 2", cut)
	}
	if c := g.EdgeCut([]int{0, 0, 0, 0}); c != 0 {
		t.Errorf("single-part cut = %g, want 0", c)
	}
}

func TestStringAndDOT(t *testing.T) {
	g := ringGraph(3)
	g.AddExecPhase("compute", 1)
	s := g.String()
	for _, want := range []string{"3 tasks", "ring", "compute"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in %q", want, s)
		}
	}
	dot := g.DOT()
	if !strings.Contains(dot, "0 -> 1") || !strings.Contains(dot, "digraph") {
		t.Errorf("DOT output malformed: %s", dot)
	}
}

// Property: EdgeCut of the all-distinct partition equals total collapsed
// weight, and of the all-same partition equals zero.
func TestEdgeCutExtremesProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed%7+2) * 2
		if n < 0 {
			n = -n
		}
		g := ringGraph(n)
		same := make([]int, n)
		diff := make([]int, n)
		for i := range diff {
			diff[i] = i
		}
		var total float64
		for _, w := range g.CollapsedWeights() {
			total += w
		}
		return g.EdgeCut(same) == 0 && g.EdgeCut(diff) == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxDegree(t *testing.T) {
	g := New("star", 5)
	p := g.AddCommPhase("p")
	for i := 1; i < 5; i++ {
		g.AddEdge(p, 0, i, 1)
	}
	if got := g.MaxDegree(); got != 4 {
		t.Errorf("MaxDegree = %d, want 4", got)
	}
}
