package graph

//oregami:hot

// This file is the scratch arena behind the allocation diet: the hot
// pipeline stages (MWM candidate scoring, per-phase MM-Route, METRICS
// link accounting) borrow per-worker buffers here instead of allocating
// per call or per round. Ownership rules (see DESIGN.md):
//
//   - GetScratch/Release bracket one logical operation (one MMRoute
//     phase, one contraction); Release returns every borrowed buffer to
//     the arena at once.
//   - A borrowed slice is dead after Release: never retain one in a
//     result. Results always own fresh allocations.
//   - A Scratch is single-goroutine. Concurrent phases each take their
//     own from the pool (sync.Pool keeps reuse per-P, so parallel
//     workers do not contend).

import "sync"

// Scratch is a reusable arena of typed buffers. The zero value is
// usable; GetScratch/Release recycle instances through a pool.
type Scratch struct {
	ints  reuse[int]
	i32s  reuse[int32]
	f64s  reuse[float64]
	bools reuse[bool]
}

// reuse is a free list of one slice type: Get pops a buffer with enough
// capacity (or grows one), recording it as lent; reclaim moves every
// lent buffer back to the free list.
type reuse[T any] struct {
	free [][]T
	lent [][]T
}

func (r *reuse[T]) get(n int) []T {
	var buf []T
	if k := len(r.free); k > 0 {
		buf = r.free[k-1]
		r.free = r.free[:k-1]
	}
	if cap(buf) < n {
		buf = make([]T, n)
	}
	buf = buf[:n]
	r.lent = append(r.lent, buf)
	return buf
}

func (r *reuse[T]) reclaim() {
	r.free = append(r.free, r.lent...)
	for i := range r.lent {
		r.lent[i] = nil
	}
	r.lent = r.lent[:0]
}

var scratchPool = sync.Pool{New: func() interface{} { return new(Scratch) }}

// GetScratch borrows an arena from the pool.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// Release reclaims every buffer handed out since GetScratch and returns
// the arena to the pool. Borrowed slices must not be used afterwards.
func (s *Scratch) Release() {
	s.ints.reclaim()
	s.i32s.reclaim()
	s.f64s.reclaim()
	s.bools.reclaim()
	scratchPool.Put(s)
}

// Ints borrows a zeroed []int of length n.
func (s *Scratch) Ints(n int) []int {
	buf := s.ints.get(n)
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// IntsFill borrows an []int of length n with every element set to v.
func (s *Scratch) IntsFill(n, v int) []int {
	buf := s.ints.get(n)
	for i := range buf {
		buf[i] = v
	}
	return buf
}

// IntsCap borrows an empty []int with capacity at least n, for append
// accumulation without growth reallocations.
func (s *Scratch) IntsCap(n int) []int { return s.ints.get(n)[:0] }

// Int32s borrows a zeroed []int32 of length n.
func (s *Scratch) Int32s(n int) []int32 {
	buf := s.i32s.get(n)
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// Int32sCap borrows an empty []int32 with capacity at least n.
func (s *Scratch) Int32sCap(n int) []int32 { return s.i32s.get(n)[:0] }

// Float64s borrows a zeroed []float64 of length n.
func (s *Scratch) Float64s(n int) []float64 {
	buf := s.f64s.get(n)
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// Bools borrows a zeroed []bool of length n.
func (s *Scratch) Bools(n int) []bool {
	buf := s.bools.get(n)
	for i := range buf {
		buf[i] = false
	}
	return buf
}
