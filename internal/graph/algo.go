package graph

// Components returns the connected components of the collapsed static
// graph, each as a sorted slice of task ids, ordered by smallest member.
func (g *TaskGraph) Components() [][]int {
	adj := g.CSR()
	seen := make([]bool, g.NumTasks)
	var comps [][]int
	for s := 0; s < g.NumTasks; s++ {
		if seen[s] {
			continue
		}
		comp := []int{s}
		seen[s] = true
		for q := []int{s}; len(q) > 0; {
			v := q[0]
			q = q[1:]
			for _, nb := range adj.Neighbors(v) {
				if !seen[nb] {
					seen[nb] = true
					comp = append(comp, int(nb))
					q = append(q, int(nb))
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// BFSDistances returns hop distances from src in the collapsed static
// graph; unreachable tasks get -1.
func (g *TaskGraph) BFSDistances(src int) []int {
	adj := g.CSR()
	dist := make([]int, g.NumTasks)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	for q := []int{src}; len(q) > 0; {
		v := q[0]
		q = q[1:]
		for _, nb := range adj.Neighbors(v) {
			if dist[nb] == -1 {
				dist[nb] = dist[v] + 1
				q = append(q, int(nb))
			}
		}
	}
	return dist
}

// MaxDegree returns the maximum collapsed-graph degree over all tasks.
func (g *TaskGraph) MaxDegree() int {
	c := g.CSR()
	max := 0
	for v := 0; v < c.N; v++ {
		if d := c.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// EdgeCut returns the total collapsed communication weight between tasks
// assigned to different parts under the given partition (part[v] = part id
// of task v). This is the "total IPC" objective of MWM-Contract.
func (g *TaskGraph) EdgeCut(part []int) float64 {
	// Iterate the sorted collapsed entries, not the CollapsedWeights map:
	// float addition is not associative, so summing in map order made the
	// cut differ in the last ulp between runs.
	var cut float64
	for _, e := range g.CollapsedEntries(1) {
		if part[e.A] != part[e.B] {
			cut += e.W
		}
	}
	return cut
}
