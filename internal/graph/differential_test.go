package graph_test

// Differential referee for the flat CSR core: every map-shaped quantity
// the old implementation computed (collapsed weights in chain order,
// collapsed entries in two-level per-phase order, undirected adjacency)
// is recomputed here with the straightforward map algorithms it
// replaced, and the flat results must match bit for bit — float
// comparisons go through math.Float64bits, not epsilon.

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"oregami/internal/gen"
	"oregami/internal/graph"
)

// refChainWeights is the historical CollapsedWeights algorithm: one map,
// accumulated pair by pair in phase-then-edge order (a single addition
// chain per pair).
func refChainWeights(g *graph.TaskGraph) map[[2]int]float64 {
	w := make(map[[2]int]float64)
	for _, p := range g.Comm {
		for _, e := range p.Edges {
			if e.From == e.To {
				continue
			}
			a, b := e.From, e.To
			if a > b {
				a, b = b, a
			}
			w[[2]int{a, b}] += e.Weight
		}
	}
	return w
}

// refPhaseWeights is the historical CollapsedEntries accumulation: each
// phase sums into its own subtotal map, and subtotals add into the pair
// total at phase boundaries. For non-integer weights the result can
// differ from refChainWeights in the last ulp, which is exactly why the
// two orders are kept distinct.
func refPhaseWeights(g *graph.TaskGraph) map[[2]int]float64 {
	total := make(map[[2]int]float64)
	for _, p := range g.Comm {
		sub := make(map[[2]int]float64)
		for _, e := range p.Edges {
			if e.From == e.To {
				continue
			}
			a, b := e.From, e.To
			if a > b {
				a, b = b, a
			}
			sub[[2]int{a, b}] += e.Weight
		}
		for k, v := range sub {
			total[k] += v
		}
	}
	return total
}

func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// fractionalSize draws graphs whose weights exercise float rounding:
// integer weights scaled by 1/3 would change semantics, so instead the
// stock generator is used but with enough phases that per-phase
// subtotals actually differ from the single chain when they can.
func diffSize(r *rand.Rand) gen.GraphSize {
	return gen.GraphSize{
		Tasks:     2 + r.Intn(24),
		Phases:    1 + r.Intn(4),
		Density:   0.1 + 0.6*r.Float64(),
		MaxWeight: 1 + r.Intn(7),
	}
}

func TestCollapsedWeightsMatchesMapReferee(t *testing.T) {
	gen.ForEachSeed(t, 60, func(t *testing.T, seed int64, r *rand.Rand) {
		g := gen.TaskGraph(r, diffSize(r))
		ref := refChainWeights(g)
		got := g.CollapsedWeights()
		if len(got) != len(ref) {
			t.Fatalf("CollapsedWeights has %d pairs, referee %d", len(got), len(ref))
		}
		for k, w := range ref {
			gw, ok := got[k]
			if !ok {
				t.Fatalf("pair %v missing from CollapsedWeights", k)
			}
			if !sameBits(gw, w) {
				t.Fatalf("pair %v weight %v (bits %x), referee %v (bits %x)",
					k, gw, math.Float64bits(gw), w, math.Float64bits(w))
			}
		}
	})
}

func TestCollapsedEntriesMatchesMapRefereeAtEveryBudget(t *testing.T) {
	budgets := []int{1, 2, 4, runtime.GOMAXPROCS(0) + 3}
	gen.ForEachSeed(t, 60, func(t *testing.T, seed int64, r *rand.Rand) {
		g := gen.TaskGraph(r, diffSize(r))
		ref := refPhaseWeights(g)
		for _, workers := range budgets {
			entries := g.CollapsedEntries(workers)
			if len(entries) != len(ref) {
				t.Fatalf("workers=%d: %d entries, referee %d pairs", workers, len(entries), len(ref))
			}
			for i, e := range entries {
				if i > 0 && (entries[i-1].A > e.A || (entries[i-1].A == e.A && entries[i-1].B >= e.B)) {
					t.Fatalf("workers=%d: entries not strictly sorted at %d: %v then %v",
						workers, i, entries[i-1], e)
				}
				if e.A >= e.B {
					t.Fatalf("workers=%d: entry %d not normalized: %+v", workers, i, e)
				}
				w, ok := ref[[2]int{e.A, e.B}]
				if !ok {
					t.Fatalf("workers=%d: entry (%d,%d) not in referee", workers, e.A, e.B)
				}
				if !sameBits(e.W, w) {
					t.Fatalf("workers=%d: pair (%d,%d) weight %v (bits %x), referee %v (bits %x)",
						workers, e.A, e.B, e.W, math.Float64bits(e.W), w, math.Float64bits(w))
				}
			}
		}
	})
}

func TestCSRMatchesMapReferee(t *testing.T) {
	gen.ForEachSeed(t, 60, func(t *testing.T, seed int64, r *rand.Rand) {
		g := gen.TaskGraph(r, diffSize(r))
		ref := refChainWeights(g)
		c := g.CSR()
		if c.N != g.NumTasks {
			t.Fatalf("CSR.N=%d, graph has %d tasks", c.N, g.NumTasks)
		}
		if c.NumPairs() != len(ref) {
			t.Fatalf("CSR.NumPairs=%d, referee %d", c.NumPairs(), len(ref))
		}
		seen := 0
		for v := 0; v < g.NumTasks; v++ {
			nbrs, ws := c.Neighbors(v), c.RowWeights(v)
			if len(nbrs) != c.Degree(v) || len(ws) != len(nbrs) {
				t.Fatalf("task %d: row lengths disagree (%d nbrs, %d weights, degree %d)",
					v, len(nbrs), len(ws), c.Degree(v))
			}
			if g.Degree(v) != len(nbrs) {
				t.Fatalf("task %d: TaskGraph.Degree=%d, CSR row %d", v, g.Degree(v), len(nbrs))
			}
			for i, nb := range nbrs {
				u := int(nb)
				if i > 0 && int(nbrs[i-1]) >= u {
					t.Fatalf("task %d: row not strictly ascending: %v", v, nbrs)
				}
				if u == v {
					t.Fatalf("task %d: self loop in CSR row", v)
				}
				a, b := v, u
				if a > b {
					a, b = b, a
				}
				w, ok := ref[[2]int{a, b}]
				if !ok {
					t.Fatalf("task %d: CSR edge to %d not in referee", v, u)
				}
				if !sameBits(ws[i], w) {
					t.Fatalf("task %d->%d: CSR weight %v, referee %v", v, u, ws[i], w)
				}
				if bw, ok := c.WeightBetween(v, u); !ok || !sameBits(bw, w) {
					t.Fatalf("WeightBetween(%d,%d)=%v,%v, referee %v", v, u, bw, ok, w)
				}
				seen++
			}
			// Binary search misses must miss: probe a non-neighbor.
			for probe := 0; probe < g.NumTasks; probe++ {
				a, b := v, probe
				if a > b {
					a, b = b, a
				}
				if _, inRef := ref[[2]int{a, b}]; !inRef || probe == v {
					if _, ok := c.WeightBetween(v, probe); ok {
						t.Fatalf("WeightBetween(%d,%d) hit, referee has no pair", v, probe)
					}
				}
			}
		}
		if seen != 2*len(ref) {
			t.Fatalf("CSR has %d directed slots, referee implies %d", seen, 2*len(ref))
		}
	})
}

func TestUndirectedMatchesCSR(t *testing.T) {
	gen.ForEachSeed(t, 40, func(t *testing.T, seed int64, r *rand.Rand) {
		g := gen.TaskGraph(r, diffSize(r))
		c := g.CSR()
		und := g.Undirected()
		if len(und) != g.NumTasks {
			t.Fatalf("Undirected has %d rows for %d tasks", len(und), g.NumTasks)
		}
		for v := range und {
			nbrs, ws := c.Neighbors(v), c.RowWeights(v)
			if len(und[v]) != len(nbrs) {
				t.Fatalf("task %d: Undirected row %d, CSR row %d", v, len(und[v]), len(nbrs))
			}
			for i, wn := range und[v] {
				if wn.To != int(nbrs[i]) || !sameBits(wn.Weight, ws[i]) {
					t.Fatalf("task %d slot %d: Undirected %+v, CSR (%d, %v)",
						v, i, wn, nbrs[i], ws[i])
				}
			}
		}
	})
}

// TestCSRCacheInvalidation mutates a graph after its CSR is cached and
// checks the next CSR call reflects the mutation — the lazy cache must
// never serve a stale view.
func TestCSRCacheInvalidation(t *testing.T) {
	gen.ForEachSeed(t, 30, func(t *testing.T, seed int64, r *rand.Rand) {
		g := gen.TaskGraph(r, diffSize(r))
		g.WarmCSR()
		// Mutate: new phase plus a duplicated and a fresh edge.
		p := g.AddCommPhase("extra")
		a, b := r.Intn(g.NumTasks), r.Intn(g.NumTasks)
		g.AddEdge(p, a, b, 2.5)
		g.AddEdge(p, b, a, 1.25)
		ref := refChainWeights(g)
		c := g.CSR()
		if c.NumPairs() != len(ref) {
			t.Fatalf("after mutation: CSR has %d pairs, referee %d", c.NumPairs(), len(ref))
		}
		for k, w := range ref {
			got, ok := c.WeightBetween(k[0], k[1])
			if !ok || !sameBits(got, w) {
				t.Fatalf("after mutation: pair %v = %v,%v, referee %v", k, got, ok, w)
			}
		}
	})
}
