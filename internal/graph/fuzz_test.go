package graph_test

// FuzzCSRRoundTrip drives the generator with fuzzer-chosen shape
// parameters, builds the flat CSR, and referees every query against the
// map algorithms the CSR replaced. Registered in `make fuzz`.

import (
	"math"
	"testing"

	"oregami/internal/gen"
)

func FuzzCSRRoundTrip(f *testing.F) {
	// Seed corpus: the shapes the differential tests sweep, plus
	// degenerate single-task and edge-free graphs.
	f.Add(int64(1), uint8(8), uint8(2), uint8(40), uint8(4))
	f.Add(int64(7), uint8(160), uint8(8), uint8(15), uint8(8))
	f.Add(int64(3), uint8(1), uint8(1), uint8(0), uint8(1))
	f.Add(int64(42), uint8(31), uint8(5), uint8(90), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, tasks, phases, density, maxW uint8) {
		size := gen.GraphSize{
			Tasks:     1 + int(tasks)%64,
			Phases:    1 + int(phases)%6,
			Density:   float64(density%101) / 100,
			MaxWeight: 1 + int(maxW)%9,
		}
		g := gen.TaskGraph(gen.Rand(seed), size)
		ref := refChainWeights(g)
		c := g.CSR()
		if c.N != g.NumTasks || c.NumPairs() != len(ref) {
			t.Fatalf("CSR shape (N=%d pairs=%d) disagrees with referee (N=%d pairs=%d)",
				c.N, c.NumPairs(), g.NumTasks, len(ref))
		}
		if len(c.Off) != c.N+1 || c.Off[0] != 0 || int(c.Off[c.N]) != len(c.Adj) || len(c.W) != len(c.Adj) {
			t.Fatalf("CSR arrays inconsistent: |Off|=%d N=%d Off[N]=%d |Adj|=%d |W|=%d",
				len(c.Off), c.N, c.Off[c.N], len(c.Adj), len(c.W))
		}
		directed := 0
		for v := 0; v < c.N; v++ {
			nbrs, ws := c.Neighbors(v), c.RowWeights(v)
			for i, nb := range nbrs {
				u := int(nb)
				if u < 0 || u >= c.N || u == v {
					t.Fatalf("task %d: neighbor %d out of range", v, u)
				}
				if i > 0 && int(nbrs[i-1]) >= u {
					t.Fatalf("task %d: row not strictly ascending", v)
				}
				a, b := v, u
				if a > b {
					a, b = b, a
				}
				w, ok := ref[[2]int{a, b}]
				if !ok || math.Float64bits(w) != math.Float64bits(ws[i]) {
					t.Fatalf("task %d->%d: CSR weight %v, referee %v (present=%v)", v, u, ws[i], w, ok)
				}
				// Round trip through the binary-search view.
				bw, ok := c.WeightBetween(v, u)
				if !ok || math.Float64bits(bw) != math.Float64bits(w) {
					t.Fatalf("WeightBetween(%d,%d)=%v,%v, want %v", v, u, bw, ok, w)
				}
				directed++
			}
		}
		if directed != 2*len(ref) {
			t.Fatalf("CSR holds %d directed slots, referee implies %d", directed, 2*len(ref))
		}
	})
}
