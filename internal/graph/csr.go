package graph

// This file is the flat core of the collapsed static graph: the
// map-shaped views (CollapsedWeights, per-call seen-sets) that dominated
// the pipeline's allocation profile are replaced by offset/adjacency
// arrays built once and shared by every hot caller (ROADMAP item 1).

//oregami:hot

import "oregami/internal/par"

// CSR is the collapsed static task graph in compressed-sparse-row form.
// Row v spans Adj[Off[v]:Off[v+1]]: the distinct neighbors of task v in
// ascending order, with W aligned slot for slot carrying the total
// undirected communication volume between the pair, accumulated in the
// CollapsedWeights chain order (see the note there) so the floats are
// bit-identical to the map-era Undirected values. A CSR is immutable
// once built and safe to share across goroutines.
type CSR struct {
	// N is the number of tasks (rows).
	N int
	// Off has N+1 entries; row v is Adj[Off[v]:Off[v+1]].
	Off []int32
	// Adj holds neighbor task ids, ascending within each row.
	Adj []int32
	// W holds the collapsed pair weight for the matching Adj slot. The
	// weight appears on both directed rows of the pair.
	W []float64
}

// Neighbors returns task v's neighbor row. The slice aliases the CSR;
// callers must not modify it.
func (c *CSR) Neighbors(v int) []int32 { return c.Adj[c.Off[v]:c.Off[v+1]] }

// RowWeights returns the weights aligned with Neighbors(v). The slice
// aliases the CSR; callers must not modify it.
func (c *CSR) RowWeights(v int) []float64 { return c.W[c.Off[v]:c.Off[v+1]] }

// Degree returns the number of distinct collapsed-graph neighbors of v.
func (c *CSR) Degree(v int) int { return int(c.Off[v+1] - c.Off[v]) }

// WeightBetween returns the collapsed weight between tasks a and b and
// whether the pair is connected, by binary search on a's row.
func (c *CSR) WeightBetween(a, b int) (float64, bool) {
	lo, hi := int(c.Off[a]), int(c.Off[a+1])
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case int(c.Adj[mid]) < b:
			lo = mid + 1
		case int(c.Adj[mid]) > b:
			hi = mid
		default:
			return c.W[mid], true
		}
	}
	return 0, false
}

// NumPairs returns the number of undirected collapsed edges.
func (c *CSR) NumPairs() int { return len(c.Adj) / 2 }

// triple is one directed contribution to the collapsed graph during the
// CSR/entries build: the undirected pair (a < b), the comm phase it came
// from, and its global position in phase-then-edge traversal order. seq
// makes (a, b, seq) a strict total order, so sorting is deterministic at
// every worker count, and the stable-by-construction (phase, edge) order
// within each pair reproduces the exact float addition sequence of the
// per-phase map accumulation the flat build replaced.
type triple struct {
	a, b  int32
	phase int32
	seq   int32
	w     float64
}

// collapseTriples gathers one triple per non-self directed edge of every
// phase, in phase-then-edge order, then sorts by (a, b, seq) on up to
// workers goroutines.
func (g *TaskGraph) collapseTriples(workers int) []triple {
	n := 0
	for _, p := range g.Comm {
		n += len(p.Edges)
	}
	ts := make([]triple, 0, n)
	seq := int32(0)
	for pi, p := range g.Comm {
		for _, e := range p.Edges {
			seq++
			if e.From == e.To {
				continue
			}
			a, b := int32(e.From), int32(e.To)
			if a > b {
				a, b = b, a
			}
			ts = append(ts, triple{a: a, b: b, phase: int32(pi), seq: seq, w: e.Weight})
		}
	}
	par.Sort(workers, ts, func(x, y triple) bool {
		if x.a != y.a {
			return x.a < y.a
		}
		if x.b != y.b {
			return x.b < y.b
		}
		return x.seq < y.seq
	})
	return ts
}

// foldTriples scans sorted triples and emits one CollapsedEntry per
// distinct pair. Within a pair, edge weights accumulate into a per-phase
// subtotal that is flushed into the pair total at each phase boundary —
// the exact addition order of the per-phase map merge this replaces, so
// every weight is bit-identical to the historical value.
func foldTriples(ts []triple, emit func(CollapsedEntry)) {
	for i := 0; i < len(ts); {
		a, b := ts[i].a, ts[i].b
		var total float64
		for i < len(ts) && ts[i].a == a && ts[i].b == b {
			phase := ts[i].phase
			var sub float64
			for i < len(ts) && ts[i].a == a && ts[i].b == b && ts[i].phase == phase {
				sub += ts[i].w
				i++
			}
			total += sub
		}
		emit(CollapsedEntry{A: int(a), B: int(b), W: total})
	}
}

// buildCSR constructs the CSR from the sorted entries.
func buildCSR(n int, entries []CollapsedEntry) *CSR {
	c := &CSR{N: n, Off: make([]int32, n+1)}
	for _, e := range entries {
		c.Off[e.A+1]++
		c.Off[e.B+1]++
	}
	for v := 0; v < n; v++ {
		c.Off[v+1] += c.Off[v]
	}
	c.Adj = make([]int32, len(entries)*2)
	c.W = make([]float64, len(entries)*2)
	next := make([]int32, n)
	copy(next, c.Off[:n])
	// Entries arrive sorted by (A, B). For a fixed row v, neighbors
	// u < v stream in ascending u (from entries (u, v) whose A = u < v
	// sort first), then neighbors u > v in ascending u (from entries
	// (v, u)) — each row fills already sorted, no per-row sort.
	for _, e := range entries {
		c.Adj[next[e.A]] = int32(e.B)
		c.W[next[e.A]] = e.W
		next[e.A]++
		c.Adj[next[e.B]] = int32(e.A)
		c.W[next[e.B]] = e.W
		next[e.B]++
	}
	return c
}

// CSR returns the collapsed static graph in flat form, building and
// caching it on first use. Mutating the graph (AddEdge, AddCommPhase)
// invalidates the cache. The first call builds lazily and is not safe
// to race with other CSR/Degree calls; callers about to share the graph
// across goroutines warm it once, single-threaded, via WarmCSR — the
// same discipline as topology.WarmDistances.
func (g *TaskGraph) CSR() *CSR {
	if g.csr == nil {
		g.csr = buildCSR(g.NumTasks, g.flatWeights())
	}
	return g.csr
}

// WarmCSR forces the cached CSR to exist so later concurrent readers
// never trigger the unsynchronized lazy build.
func (g *TaskGraph) WarmCSR() { g.CSR() }
