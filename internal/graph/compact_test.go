package graph

import "testing"

func TestNewCompactLabels(t *testing.T) {
	for _, n := range []int{0, 1, 2, 9, 10, 11, 99, 100, 101, 1234} {
		a, b := New("x", n), NewCompact("x", n)
		if len(a.Labels) != len(b.Labels) {
			t.Fatalf("n=%d: len %d vs %d", n, len(a.Labels), len(b.Labels))
		}
		for i := range a.Labels {
			if a.Labels[i] != b.Labels[i] {
				t.Fatalf("n=%d label[%d]: %q vs %q", n, i, a.Labels[i], b.Labels[i])
			}
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}
