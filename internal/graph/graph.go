// Package graph implements the OREGAMI task-graph model: a weighted,
// colored directed graph G = (V, E1, ..., Ec) in which each edge set Ek
// corresponds to one communication phase of the parallel computation
// (paper, Section 2). Node weights are per-execution-phase execution
// costs; edge weights are per-message communication volumes.
package graph

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Edge is a directed communication edge between two tasks. Weight is the
// message volume transmitted on this edge during its phase.
type Edge struct {
	From, To int
	Weight   float64
}

// CommPhase is one "color" of the task graph: the set of edges involved in
// a single synchronous communication phase.
type CommPhase struct {
	Name  string
	Edges []Edge
}

// ExecPhase is a computation phase bracketed by communication phases.
// Cost[v] is the (approximate) execution time of task v during this phase;
// a nil Cost means the phase has uniform cost Uniform on every task.
type ExecPhase struct {
	Name    string
	Uniform float64
	Cost    []float64
}

// TaskGraph is the paper's model of a parallel computation: a static set
// of tasks, a set of colored communication phases, and a set of execution
// phases. Tasks are identified by dense indices 0..NumTasks-1; Labels
// carries the user-visible LaRCS labels.
type TaskGraph struct {
	Name     string
	NumTasks int
	Labels   []string
	Comm     []*CommPhase
	Exec     []*ExecPhase

	// Phase lookup: name-sorted index slices (binary search) instead of
	// the map[string]int of the map-era representation.
	commNames []nameIndex
	execNames []nameIndex

	// csr caches the flat collapsed static graph; any mutation clears it.
	csr *CSR
}

// nameIndex binds a phase name to its position in declaration order.
type nameIndex struct {
	name string
	pos  int
}

// insertName inserts (name, pos) into the name-sorted slice, reporting
// false on a duplicate name.
func insertName(s []nameIndex, name string, pos int) ([]nameIndex, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i].name >= name })
	if i < len(s) && s[i].name == name {
		return s, false
	}
	s = append(s, nameIndex{})
	copy(s[i+1:], s[i:])
	s[i] = nameIndex{name: name, pos: pos}
	return s, true
}

// lookupName finds name in the sorted slice, returning its declaration
// position or -1.
func lookupName(s []nameIndex, name string) int {
	i := sort.Search(len(s), func(i int) bool { return s[i].name >= name })
	if i < len(s) && s[i].name == name {
		return s[i].pos
	}
	return -1
}

// New creates an empty task graph with n tasks labeled "0".."n-1".
func New(name string, n int) *TaskGraph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative task count %d", n))
	}
	labels := make([]string, n)
	for i := range labels {
		labels[i] = fmt.Sprint(i)
	}
	return &TaskGraph{
		Name:     name,
		NumTasks: n,
		Labels:   labels,
	}
}

// NewCompact creates an empty task graph with the same "0".."n-1"
// labels as New, but carves them all from one backing string: three
// allocations total instead of one per task. The million-task
// generators in internal/gen use it so graph construction stays out of
// the coarsener's allocation budget.
func NewCompact(name string, n int) *TaskGraph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative task count %d", n))
	}
	// Total decimal digits of "0" plus 1..n-1 grouped by width:
	// width w covers [10^(w-1), min(n-1, 10^w - 1)].
	total := 0
	if n > 0 {
		total = 1
	}
	for lo, w := 1, 1; lo <= n-1; lo, w = lo*10, w+1 {
		hi := lo*10 - 1
		if hi > n-1 {
			hi = n - 1
		}
		total += (hi - lo + 1) * w
	}
	buf := make([]byte, 0, total)
	for i := 0; i < n; i++ {
		buf = strconv.AppendInt(buf, int64(i), 10)
	}
	backing := string(buf)
	labels := make([]string, n)
	start, width, next := 0, 1, 10
	for i := 0; i < n; i++ {
		if i == next {
			next *= 10
			width++
		}
		labels[i] = backing[start : start+width]
		start += width
	}
	return &TaskGraph{
		Name:     name,
		NumTasks: n,
		Labels:   labels,
	}
}

// AddCommPhase registers a new, empty communication phase and returns it.
// Phase names must be unique across communication phases.
func (g *TaskGraph) AddCommPhase(name string) *CommPhase {
	names, ok := insertName(g.commNames, name, len(g.Comm))
	if !ok {
		panic(fmt.Sprintf("graph: duplicate comm phase %q", name))
	}
	g.commNames = names
	p := &CommPhase{Name: name}
	g.Comm = append(g.Comm, p)
	g.csr = nil
	return p
}

// AddExecPhase registers a new execution phase with a uniform per-task
// cost and returns it. Phase names must be unique across execution phases.
func (g *TaskGraph) AddExecPhase(name string, uniform float64) *ExecPhase {
	names, ok := insertName(g.execNames, name, len(g.Exec))
	if !ok {
		panic(fmt.Sprintf("graph: duplicate exec phase %q", name))
	}
	g.execNames = names
	p := &ExecPhase{Name: name, Uniform: uniform}
	g.Exec = append(g.Exec, p)
	return p
}

// CommPhaseByName returns the named communication phase, or nil.
func (g *TaskGraph) CommPhaseByName(name string) *CommPhase {
	if i := lookupName(g.commNames, name); i >= 0 {
		return g.Comm[i]
	}
	return nil
}

// ExecPhaseByName returns the named execution phase, or nil.
func (g *TaskGraph) ExecPhaseByName(name string) *ExecPhase {
	if i := lookupName(g.execNames, name); i >= 0 {
		return g.Exec[i]
	}
	return nil
}

// AddEdge appends a directed edge to phase p, validating endpoints.
func (g *TaskGraph) AddEdge(p *CommPhase, from, to int, weight float64) {
	if from < 0 || from >= g.NumTasks || to < 0 || to >= g.NumTasks {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", from, to, g.NumTasks))
	}
	if weight < 0 {
		panic(fmt.Sprintf("graph: negative edge weight %g", weight))
	}
	p.Edges = append(p.Edges, Edge{From: from, To: to, Weight: weight})
	g.csr = nil
}

// TaskCost returns task v's execution cost in exec phase p.
func (p *ExecPhase) TaskCost(v int) float64 {
	if p.Cost != nil {
		return p.Cost[v]
	}
	return p.Uniform
}

// NumEdges returns the total number of edges over all communication phases.
func (g *TaskGraph) NumEdges() int {
	n := 0
	for _, p := range g.Comm {
		n += len(p.Edges)
	}
	return n
}

// AllEdges returns every communication edge of every phase, in phase order.
func (g *TaskGraph) AllEdges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for _, p := range g.Comm {
		out = append(out, p.Edges...)
	}
	return out
}

// TotalVolume is the sum of all edge weights over all phases.
func (g *TaskGraph) TotalVolume() float64 {
	var v float64
	for _, p := range g.Comm {
		for _, e := range p.Edges {
			v += e.Weight
		}
	}
	return v
}

// TotalExecCost returns the sum over tasks of the cost of exec phase p; it
// is the sequential work of that phase.
func (p *ExecPhase) TotalExecCost(numTasks int) float64 {
	if p.Cost != nil {
		var s float64
		for _, c := range p.Cost {
			s += c
		}
		return s
	}
	return p.Uniform * float64(numTasks)
}

// Validate checks structural invariants: endpoint ranges, label count, and
// per-phase cost vector lengths. It returns the first violation found.
func (g *TaskGraph) Validate() error {
	if len(g.Labels) != g.NumTasks {
		return fmt.Errorf("graph: %q: %d labels for %d tasks", g.Name, len(g.Labels), g.NumTasks)
	}
	for _, p := range g.Comm {
		for _, e := range p.Edges {
			if e.From < 0 || e.From >= g.NumTasks || e.To < 0 || e.To >= g.NumTasks {
				return fmt.Errorf("graph: %q phase %q: edge (%d,%d) out of range", g.Name, p.Name, e.From, e.To)
			}
			if e.Weight < 0 {
				return fmt.Errorf("graph: %q phase %q: negative weight on edge (%d,%d)", g.Name, p.Name, e.From, e.To)
			}
		}
	}
	for _, p := range g.Exec {
		if p.Cost != nil && len(p.Cost) != g.NumTasks {
			return fmt.Errorf("graph: %q exec phase %q: %d costs for %d tasks", g.Name, p.Name, len(p.Cost), g.NumTasks)
		}
	}
	return nil
}

// Clone returns a deep copy of the task graph.
func (g *TaskGraph) Clone() *TaskGraph {
	c := New(g.Name, g.NumTasks)
	copy(c.Labels, g.Labels)
	for _, p := range g.Comm {
		cp := c.AddCommPhase(p.Name)
		cp.Edges = append([]Edge(nil), p.Edges...)
	}
	for _, p := range g.Exec {
		ep := c.AddExecPhase(p.Name, p.Uniform)
		if p.Cost != nil {
			ep.Cost = append([]float64(nil), p.Cost...)
		}
	}
	return c
}

// CollapsedWeights returns, as a symmetric weight map keyed by ordered
// pairs, the total communication volume between each pair of distinct
// tasks summed over all phases and both directions. It is a thin map
// adapter over the flat collapsed entries kept for random-access
// callers; the hot paths consume CollapsedEntries or the CSR directly.
//
// Accumulation order note: CollapsedWeights sums each pair's edge
// weights in one chain, in phase-then-edge order — the order the
// historical map implementation used — while CollapsedEntries keeps the
// two-level per-phase-subtotal order of the historical parallel merge.
// The two can differ in the last ulp on non-integer weights, and
// callers were written against one or the other, so both orders are
// preserved exactly.
func (g *TaskGraph) CollapsedWeights() map[[2]int]float64 {
	entries := g.flatWeights()
	w := make(map[[2]int]float64, len(entries))
	for _, e := range entries {
		w[[2]int{e.A, e.B}] = e.W
	}
	return w
}

// flatWeights returns the collapsed pairs sorted by (A, B) with each
// weight accumulated in one chain over phase-then-edge order (the
// CollapsedWeights order; see the note there).
func (g *TaskGraph) flatWeights() []CollapsedEntry {
	ts := g.collapseTriples(1)
	out := make([]CollapsedEntry, 0, len(ts))
	for i := 0; i < len(ts); {
		a, b := ts[i].a, ts[i].b
		var total float64
		for i < len(ts) && ts[i].a == a && ts[i].b == b {
			total += ts[i].w
			i++
		}
		out = append(out, CollapsedEntry{A: int(a), B: int(b), W: total})
	}
	return out
}

// CollapsedEntry is one undirected edge of the collapsed static graph:
// tasks A < B with total inter-task volume W.
type CollapsedEntry struct {
	A, B int
	W    float64
}

// CollapsedEntries returns the collapsed static graph as a slice sorted
// by (A, B), built flat (no maps): directed edges become (pair, phase,
// seq) triples sorted on up to workers goroutines, then per-pair runs
// fold into weights. The per-pair addition order is fixed — edge order
// within a phase into a subtotal, subtotals added in phase declaration
// order — regardless of the worker count, so the weights (and
// everything contracted from them) are bit-identical at any
// parallelism. Contraction consumes this form; the map-shaped
// CollapsedWeights remains for random-access callers.
func (g *TaskGraph) CollapsedEntries(workers int) []CollapsedEntry {
	ts := g.collapseTriples(workers)
	out := make([]CollapsedEntry, 0, len(ts))
	foldTriples(ts, func(e CollapsedEntry) { out = append(out, e) })
	return out
}

// Undirected returns the collapsed static graph as adjacency lists of
// (neighbor, weight) pairs, one entry per unordered task pair, carved
// from one backing array off the cached CSR.
func (g *TaskGraph) Undirected() [][]WeightedNeighbor {
	c := g.CSR()
	adj := make([][]WeightedNeighbor, g.NumTasks)
	backing := make([]WeightedNeighbor, len(c.Adj))
	for v := 0; v < g.NumTasks; v++ {
		row := backing[c.Off[v]:c.Off[v+1]:c.Off[v+1]]
		for i, u := range c.Neighbors(v) {
			row[i] = WeightedNeighbor{To: int(u), Weight: c.RowWeights(v)[i]}
		}
		adj[v] = row
	}
	return adj
}

// WeightedNeighbor is one endpoint of an undirected weighted edge.
type WeightedNeighbor struct {
	To     int
	Weight float64
}

// Degree returns the number of distinct neighbors of task v in the
// collapsed static graph (a CSR row length; the per-call seen-set is
// gone).
func (g *TaskGraph) Degree(v int) int {
	return g.CSR().Degree(v)
}

// IsNodeSymmetricCandidate reports whether every communication phase is a
// bijection on tasks (each task has exactly one outgoing and one incoming
// edge per phase) — the precondition for the group-theoretic contraction
// of Section 4.2.2.
func (g *TaskGraph) IsNodeSymmetricCandidate() bool {
	for _, p := range g.Comm {
		if len(p.Edges) != g.NumTasks {
			return false
		}
		out := make([]int, g.NumTasks)
		in := make([]int, g.NumTasks)
		for _, e := range p.Edges {
			out[e.From]++
			in[e.To]++
		}
		for v := 0; v < g.NumTasks; v++ {
			if out[v] != 1 || in[v] != 1 {
				return false
			}
		}
	}
	return len(g.Comm) > 0
}

// PhasePermutation returns, for a bijective phase, the permutation image
// p(i) = the unique target of task i, and ok=false if the phase is not a
// bijection.
func (g *TaskGraph) PhasePermutation(p *CommPhase) ([]int, bool) {
	img := make([]int, g.NumTasks)
	for i := range img {
		img[i] = -1
	}
	in := make([]int, g.NumTasks)
	for _, e := range p.Edges {
		if img[e.From] != -1 {
			return nil, false
		}
		img[e.From] = e.To
		in[e.To]++
	}
	for v := 0; v < g.NumTasks; v++ {
		if img[v] == -1 || in[v] != 1 {
			return nil, false
		}
	}
	return img, true
}

// String renders a compact human-readable summary.
func (g *TaskGraph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "task graph %q: %d tasks, %d comm phases, %d exec phases\n",
		g.Name, g.NumTasks, len(g.Comm), len(g.Exec))
	for _, p := range g.Comm {
		fmt.Fprintf(&b, "  comm %-12s %4d edges, volume %g\n", p.Name, len(p.Edges), phaseVolume(p))
	}
	for _, p := range g.Exec {
		fmt.Fprintf(&b, "  exec %-12s total cost %g\n", p.Name, p.TotalExecCost(g.NumTasks))
	}
	return b.String()
}

func phaseVolume(p *CommPhase) float64 {
	var v float64
	for _, e := range p.Edges {
		v += e.Weight
	}
	return v
}

// DOT renders the collapsed static graph in Graphviz format, one style
// per phase color.
func (g *TaskGraph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	for v := 0; v < g.NumTasks; v++ {
		fmt.Fprintf(&b, "  %d [label=%q];\n", v, g.Labels[v])
	}
	for ci, p := range g.Comm {
		for _, e := range p.Edges {
			fmt.Fprintf(&b, "  %d -> %d [label=%q colorscheme=paired12 color=%d];\n",
				e.From, e.To, p.Name, ci%12+1)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
