// Package matching provides the combinatorial matching algorithms that
// power OREGAMI's MAPPER: maximum-weight matching on general graphs (the
// engine of Algorithm MWM-Contract, Section 4.3 of the paper), and greedy
// maximal / Hopcroft-Karp maximum matching on bipartite graphs (the
// engine of Algorithm MM-Route, Section 4.4).
package matching

// WEdge is an undirected weighted edge between vertices I and J.
// Weights should be integral-valued (the contraction and routing callers
// use message counts/volumes); the blossom algorithm's dual updates are
// then exact in float64.
type WEdge struct {
	I, J   int
	Weight float64
}

// MaxWeightMatching computes a maximum-weight matching on a general
// (non-bipartite) graph with n vertices, using Galil's O(n^3) primal-dual
// blossom algorithm. It returns mate where mate[v] is the vertex matched
// to v, or -1 if v is unmatched.
//
// If maxCardinality is true, the matching is restricted to maximum
// cardinality matchings of maximum weight.
//
// Self-loops are ignored; duplicate edges are permitted (the heaviest
// effectively wins). Negative-weight edges are never used unless
// maxCardinality forces them.
func MaxWeightMatching(n int, edges []WEdge, maxCardinality bool) []int {
	mate := make([]int, n)
	for i := range mate {
		mate[i] = -1
	}
	var clean []WEdge
	for _, e := range edges {
		if e.I == e.J {
			continue
		}
		if e.I < 0 || e.I >= n || e.J < 0 || e.J >= n {
			panic("matching: edge endpoint out of range")
		}
		clean = append(clean, e)
	}
	if len(clean) == 0 {
		return mate
	}
	b := newBlossomState(n, clean, maxCardinality)
	b.solve()
	copy(mate, b.vertexMates())
	return mate
}

// MatchingWeight sums the weights of matched edges under mate, counting
// each pair once. It uses the maximum weight among parallel edges.
func MatchingWeight(mate []int, edges []WEdge) float64 {
	best := make(map[[2]int]float64)
	for _, e := range edges {
		a, b := e.I, e.J
		if a > b {
			a, b = b, a
		}
		if w, ok := best[[2]int{a, b}]; !ok || e.Weight > w {
			best[[2]int{a, b}] = e.Weight
		}
	}
	var total float64
	for v, m := range mate {
		if m > v {
			total += best[[2]int{v, m}]
		}
	}
	return total
}

// blossomState carries the primal-dual machinery. The encoding follows
// the standard array formulation: edge k has endpoints 2k and 2k+1;
// endpoint p belongs to vertex endpoint[p]; vertices are 0..n-1 and
// blossom ids are n..2n-1.
type blossomState struct {
	n       int
	edges   []WEdge
	maxCard bool

	endpoint  []int   // endpoint[p] = vertex of endpoint p
	neighbend [][]int // neighbend[v] = remote endpoints of v's edges

	mate     []int // mate[v] = remote endpoint of matched edge or -1
	label    []int // 0 free, 1 S, 2 T (indexed by vertex or blossom)
	labelEnd []int // endpoint through which the label was obtained

	inBlossom     []int   // top-level blossom of each vertex
	blossomParent []int   // immediate parent blossom or -1
	blossomChilds [][]int // ordered sub-blossoms
	blossomBase   []int   // base vertex of each blossom
	blossomEndps  [][]int // endpoints of edges connecting sub-blossoms

	bestEdge         []int   // least-slack edge to a different S-blossom
	blossomBestEdges [][]int // per top-level S-blossom: least-slack edge list
	unusedBlossoms   []int
	dualVar          []float64
	allowEdge        []bool
	queue            []int
}

func newBlossomState(n int, edges []WEdge, maxCard bool) *blossomState {
	ne := len(edges)
	s := &blossomState{n: n, edges: edges, maxCard: maxCard}
	var maxWeight float64
	for _, e := range edges {
		if e.Weight > maxWeight {
			maxWeight = e.Weight
		}
	}
	s.endpoint = make([]int, 2*ne)
	for p := range s.endpoint {
		if p%2 == 0 {
			s.endpoint[p] = edges[p/2].I
		} else {
			s.endpoint[p] = edges[p/2].J
		}
	}
	s.neighbend = make([][]int, n)
	for k, e := range edges {
		s.neighbend[e.I] = append(s.neighbend[e.I], 2*k+1)
		s.neighbend[e.J] = append(s.neighbend[e.J], 2*k)
	}
	s.mate = filled(n, -1)
	s.label = make([]int, 2*n)
	s.labelEnd = filled(2*n, -1)
	s.inBlossom = iota2(n)
	s.blossomParent = filled(2*n, -1)
	s.blossomChilds = make([][]int, 2*n)
	s.blossomBase = append(iota2(n), filled(n, -1)...)
	s.blossomEndps = make([][]int, 2*n)
	s.bestEdge = filled(2*n, -1)
	s.blossomBestEdges = make([][]int, 2*n)
	s.unusedBlossoms = make([]int, 0, n)
	for b := n; b < 2*n; b++ {
		s.unusedBlossoms = append(s.unusedBlossoms, b)
	}
	s.dualVar = make([]float64, 2*n)
	for v := 0; v < n; v++ {
		s.dualVar[v] = maxWeight
	}
	s.allowEdge = make([]bool, ne)
	return s
}

func filled(n, v int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = v
	}
	return s
}

func iota2(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

// slack returns the reduced cost 2*slack of edge k: pi_i + pi_j - 2w.
func (s *blossomState) slack(k int) float64 {
	e := s.edges[k]
	return s.dualVar[e.I] + s.dualVar[e.J] - 2*e.Weight
}

// blossomLeaves appends to out all vertices in blossom b.
func (s *blossomState) blossomLeaves(b int, out []int) []int {
	if b < s.n {
		return append(out, b)
	}
	for _, t := range s.blossomChilds[b] {
		out = s.blossomLeaves(t, out)
	}
	return out
}

// assignLabel gives blossom containing w label t, reached via endpoint p.
func (s *blossomState) assignLabel(w, t, p int) {
	b := s.inBlossom[w]
	s.label[w] = t
	s.label[b] = t
	s.labelEnd[w] = p
	s.labelEnd[b] = p
	s.bestEdge[w] = -1
	s.bestEdge[b] = -1
	if t == 1 {
		s.queue = s.blossomLeaves(b, s.queue)
	} else if t == 2 {
		base := s.blossomBase[b]
		s.assignLabel(s.endpoint[s.mate[base]], 1, s.mate[base]^1)
	}
}

// scanBlossom traces back from v and w to find either a common ancestor
// base vertex (returning it) or an augmenting path (returning -1).
func (s *blossomState) scanBlossom(v, w int) int {
	var path []int
	base := -1
	for v != -1 || w != -1 {
		b := s.inBlossom[v]
		if s.label[b]&4 != 0 {
			base = s.blossomBase[b]
			break
		}
		path = append(path, b)
		s.label[b] = 5
		if s.labelEnd[b] == -1 {
			v = -1
		} else {
			v = s.endpoint[s.labelEnd[b]]
			b = s.inBlossom[v]
			v = s.endpoint[s.labelEnd[b]]
		}
		if w != -1 {
			v, w = w, v
		}
	}
	for _, b := range path {
		s.label[b] = 1
	}
	return base
}

// addBlossom constructs a new blossom with the given base, through edge k
// whose endpoints are both in S-blossoms.
func (s *blossomState) addBlossom(base, k int) {
	v, w := s.edges[k].I, s.edges[k].J
	bb := s.inBlossom[base]
	bv := s.inBlossom[v]
	bw := s.inBlossom[w]
	b := s.unusedBlossoms[len(s.unusedBlossoms)-1]
	s.unusedBlossoms = s.unusedBlossoms[:len(s.unusedBlossoms)-1]
	s.blossomBase[b] = base
	s.blossomParent[b] = -1
	s.blossomParent[bb] = b
	var path, endps []int
	for bv != bb {
		s.blossomParent[bv] = b
		path = append(path, bv)
		endps = append(endps, s.labelEnd[bv])
		v = s.endpoint[s.labelEnd[bv]]
		bv = s.inBlossom[v]
	}
	path = append(path, bb)
	reverse(path)
	reverse(endps)
	endps = append(endps, 2*k)
	for bw != bb {
		s.blossomParent[bw] = b
		path = append(path, bw)
		endps = append(endps, s.labelEnd[bw]^1)
		w = s.endpoint[s.labelEnd[bw]]
		bw = s.inBlossom[w]
	}
	s.blossomChilds[b] = path
	s.blossomEndps[b] = endps
	s.label[b] = 1
	s.labelEnd[b] = s.labelEnd[bb]
	s.dualVar[b] = 0
	for _, lv := range s.blossomLeaves(b, nil) {
		if s.label[s.inBlossom[lv]] == 2 {
			s.queue = append(s.queue, lv)
		}
		s.inBlossom[lv] = b
	}
	// Compute the new blossom's least-slack edges to other S-blossoms.
	bestEdgeTo := filled(2*s.n, -1)
	for _, sub := range path {
		var nblists [][]int
		if s.blossomBestEdges[sub] == nil {
			for _, lv := range s.blossomLeaves(sub, nil) {
				list := make([]int, 0, len(s.neighbend[lv]))
				for _, p := range s.neighbend[lv] {
					list = append(list, p/2)
				}
				nblists = append(nblists, list)
			}
		} else {
			nblists = [][]int{s.blossomBestEdges[sub]}
		}
		for _, nblist := range nblists {
			for _, ek := range nblist {
				j := s.edges[ek].J
				if s.inBlossom[j] == b {
					j = s.edges[ek].I
				}
				bj := s.inBlossom[j]
				if bj != b && s.label[bj] == 1 &&
					(bestEdgeTo[bj] == -1 || s.slack(ek) < s.slack(bestEdgeTo[bj])) {
					bestEdgeTo[bj] = ek
				}
			}
		}
		s.blossomBestEdges[sub] = nil
		s.bestEdge[sub] = -1
	}
	var kept []int
	for _, ek := range bestEdgeTo {
		if ek != -1 {
			kept = append(kept, ek)
		}
	}
	s.blossomBestEdges[b] = kept
	s.bestEdge[b] = -1
	for _, ek := range kept {
		if s.bestEdge[b] == -1 || s.slack(ek) < s.slack(s.bestEdge[b]) {
			s.bestEdge[b] = ek
		}
	}
}

// expandBlossom dissolves blossom b, upgrading its sub-blossoms to
// top-level. During a stage (endStage false) the T-blossom's sub-blossoms
// are relabeled.
func (s *blossomState) expandBlossom(b int, endStage bool) {
	for _, sub := range s.blossomChilds[b] {
		s.blossomParent[sub] = -1
		if sub < s.n {
			s.inBlossom[sub] = sub
		} else if endStage && s.dualVar[sub] == 0 {
			s.expandBlossom(sub, endStage)
		} else {
			for _, lv := range s.blossomLeaves(sub, nil) {
				s.inBlossom[lv] = sub
			}
		}
	}
	if !endStage && s.label[b] == 2 {
		entryChild := s.inBlossom[s.endpoint[s.labelEnd[b]^1]]
		j := indexOf(s.blossomChilds[b], entryChild)
		var jstep, endpTrick int
		if j&1 != 0 {
			j -= len(s.blossomChilds[b])
			jstep = 1
			endpTrick = 0
		} else {
			jstep = -1
			endpTrick = 1
		}
		p := s.labelEnd[b]
		for j != 0 {
			s.label[s.endpoint[p^1]] = 0
			s.label[s.endpoint[at(s.blossomEndps[b], j-endpTrick)^endpTrick^1]] = 0
			s.assignLabel(s.endpoint[p^1], 2, p)
			s.allowEdge[at(s.blossomEndps[b], j-endpTrick)/2] = true
			j += jstep
			p = at(s.blossomEndps[b], j-endpTrick) ^ endpTrick
			s.allowEdge[p/2] = true
			j += jstep
		}
		bv := at(s.blossomChilds[b], j)
		s.label[s.endpoint[p^1]] = 2
		s.label[bv] = 2
		s.labelEnd[s.endpoint[p^1]] = p
		s.labelEnd[bv] = p
		s.bestEdge[bv] = -1
		j += jstep
		for at(s.blossomChilds[b], j) != entryChild {
			bv = at(s.blossomChilds[b], j)
			if s.label[bv] == 1 {
				j += jstep
				continue
			}
			var reached int = -1
			for _, lv := range s.blossomLeaves(bv, nil) {
				if s.label[lv] != 0 {
					reached = lv
					break
				}
			}
			if reached >= 0 {
				s.label[reached] = 0
				s.label[s.endpoint[s.mate[s.blossomBase[bv]]]] = 0
				s.assignLabel(reached, 2, s.labelEnd[reached])
			}
			j += jstep
		}
	}
	s.label[b] = -1
	s.labelEnd[b] = -1
	s.blossomChilds[b] = nil
	s.blossomEndps[b] = nil
	s.blossomBase[b] = -1
	s.blossomBestEdges[b] = nil
	s.bestEdge[b] = -1
	s.unusedBlossoms = append(s.unusedBlossoms, b)
}

// augmentBlossom swaps matched/unmatched edges over the alternating path
// through blossom b between vertex v and the base vertex.
func (s *blossomState) augmentBlossom(b, v int) {
	t := v
	for s.blossomParent[t] != b {
		t = s.blossomParent[t]
	}
	if t >= s.n {
		s.augmentBlossom(t, v)
	}
	i := indexOf(s.blossomChilds[b], t)
	j := i
	var jstep, endpTrick int
	if i&1 != 0 {
		j -= len(s.blossomChilds[b])
		jstep = 1
		endpTrick = 0
	} else {
		jstep = -1
		endpTrick = 1
	}
	for j != 0 {
		j += jstep
		t = at(s.blossomChilds[b], j)
		p := at(s.blossomEndps[b], j-endpTrick) ^ endpTrick
		if t >= s.n {
			s.augmentBlossom(t, s.endpoint[p])
		}
		j += jstep
		t = at(s.blossomChilds[b], j)
		if t >= s.n {
			s.augmentBlossom(t, s.endpoint[p^1])
		}
		s.mate[s.endpoint[p]] = p ^ 1
		s.mate[s.endpoint[p^1]] = p
	}
	s.blossomChilds[b] = rotate(s.blossomChilds[b], i)
	s.blossomEndps[b] = rotate(s.blossomEndps[b], i)
	s.blossomBase[b] = s.blossomBase[s.blossomChilds[b][0]]
}

// augmentMatching augments along the path through edge k, which joins two
// S-vertices in different trees (or the same tree without a blossom).
func (s *blossomState) augmentMatching(k int) {
	v, w := s.edges[k].I, s.edges[k].J
	for _, se := range [2][2]int{{v, 2*k + 1}, {w, 2 * k}} {
		sv, p := se[0], se[1]
		for {
			bs := s.inBlossom[sv]
			if bs >= s.n {
				s.augmentBlossom(bs, sv)
			}
			s.mate[sv] = p
			if s.labelEnd[bs] == -1 {
				break
			}
			t := s.endpoint[s.labelEnd[bs]]
			bt := s.inBlossom[t]
			sv = s.endpoint[s.labelEnd[bt]]
			j := s.endpoint[s.labelEnd[bt]^1]
			if bt >= s.n {
				s.augmentBlossom(bt, j)
			}
			s.mate[j] = s.labelEnd[bt]
			p = s.labelEnd[bt] ^ 1
		}
	}
}

// solve runs the stages of the primal-dual method.
func (s *blossomState) solve() {
	n := s.n
	for stage := 0; stage < n; stage++ {
		for i := range s.label {
			s.label[i] = 0
		}
		for i := range s.bestEdge {
			s.bestEdge[i] = -1
		}
		for b := n; b < 2*n; b++ {
			s.blossomBestEdges[b] = nil
		}
		for i := range s.allowEdge {
			s.allowEdge[i] = false
		}
		s.queue = s.queue[:0]
		for v := 0; v < n; v++ {
			if s.mate[v] == -1 && s.label[s.inBlossom[v]] == 0 {
				s.assignLabel(v, 1, -1)
			}
		}
		augmented := false
		for {
			for len(s.queue) > 0 && !augmented {
				v := s.queue[len(s.queue)-1]
				s.queue = s.queue[:len(s.queue)-1]
				for _, p := range s.neighbend[v] {
					k := p / 2
					w := s.endpoint[p]
					if s.inBlossom[v] == s.inBlossom[w] {
						continue
					}
					var kslack float64
					if !s.allowEdge[k] {
						kslack = s.slack(k)
						if kslack <= 0 {
							s.allowEdge[k] = true
						}
					}
					if s.allowEdge[k] {
						switch {
						case s.label[s.inBlossom[w]] == 0:
							s.assignLabel(w, 2, p^1)
						case s.label[s.inBlossom[w]] == 1:
							base := s.scanBlossom(v, w)
							if base >= 0 {
								s.addBlossom(base, k)
							} else {
								s.augmentMatching(k)
								augmented = true
							}
						case s.label[w] == 0:
							s.label[w] = 2
							s.labelEnd[w] = p ^ 1
						}
						if augmented {
							break
						}
					} else if s.label[s.inBlossom[w]] == 1 {
						b := s.inBlossom[v]
						if s.bestEdge[b] == -1 || kslack < s.slack(s.bestEdge[b]) {
							s.bestEdge[b] = k
						}
					} else if s.label[w] == 0 {
						if s.bestEdge[w] == -1 || kslack < s.slack(s.bestEdge[w]) {
							s.bestEdge[w] = k
						}
					}
				}
			}
			if augmented {
				break
			}
			// No augmenting path under the current duals: compute the
			// least delta over the four constraint families.
			deltaType := -1
			var delta float64
			deltaEdge, deltaBlossom := -1, -1
			if !s.maxCard {
				deltaType = 1
				delta = s.minVertexDual()
			}
			for v := 0; v < n; v++ {
				if s.label[s.inBlossom[v]] == 0 && s.bestEdge[v] != -1 {
					d := s.slack(s.bestEdge[v])
					if deltaType == -1 || d < delta {
						delta = d
						deltaType = 2
						deltaEdge = s.bestEdge[v]
					}
				}
			}
			for b := 0; b < 2*n; b++ {
				if s.blossomParent[b] == -1 && s.label[b] == 1 && s.bestEdge[b] != -1 {
					d := s.slack(s.bestEdge[b]) / 2
					if deltaType == -1 || d < delta {
						delta = d
						deltaType = 3
						deltaEdge = s.bestEdge[b]
					}
				}
			}
			for b := n; b < 2*n; b++ {
				if s.blossomBase[b] >= 0 && s.blossomParent[b] == -1 && s.label[b] == 2 &&
					(deltaType == -1 || s.dualVar[b] < delta) {
					delta = s.dualVar[b]
					deltaType = 4
					deltaBlossom = b
				}
			}
			if deltaType == -1 {
				// No further improvement possible; max-cardinality optimum.
				deltaType = 1
				delta = s.minVertexDual()
				if delta < 0 {
					delta = 0
				}
			}
			for v := 0; v < n; v++ {
				switch s.label[s.inBlossom[v]] {
				case 1:
					s.dualVar[v] -= delta
				case 2:
					s.dualVar[v] += delta
				}
			}
			for b := n; b < 2*n; b++ {
				if s.blossomBase[b] >= 0 && s.blossomParent[b] == -1 {
					switch s.label[b] {
					case 1:
						s.dualVar[b] += delta
					case 2:
						s.dualVar[b] -= delta
					}
				}
			}
			switch deltaType {
			case 1:
				// Optimum reached.
			case 2:
				s.allowEdge[deltaEdge] = true
				i := s.edges[deltaEdge].I
				if s.label[s.inBlossom[i]] == 0 {
					i = s.edges[deltaEdge].J
				}
				s.queue = append(s.queue, i)
			case 3:
				s.allowEdge[deltaEdge] = true
				s.queue = append(s.queue, s.edges[deltaEdge].I)
			case 4:
				s.expandBlossom(deltaBlossom, false)
			}
			if deltaType == 1 {
				break
			}
		}
		if !augmented {
			break
		}
		for b := n; b < 2*n; b++ {
			if s.blossomParent[b] == -1 && s.blossomBase[b] >= 0 &&
				s.label[b] == 1 && s.dualVar[b] == 0 {
				s.expandBlossom(b, true)
			}
		}
	}
}

func (s *blossomState) minVertexDual() float64 {
	m := s.dualVar[0]
	for v := 1; v < s.n; v++ {
		if s.dualVar[v] < m {
			m = s.dualVar[v]
		}
	}
	return m
}

// vertexMates converts the endpoint-encoded mates to vertex ids.
func (s *blossomState) vertexMates() []int {
	out := make([]int, s.n)
	for v := 0; v < s.n; v++ {
		if s.mate[v] >= 0 {
			out[v] = s.endpoint[s.mate[v]]
		} else {
			out[v] = -1
		}
	}
	return out
}

func reverse(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

func indexOf(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	panic("matching: element not found in blossom child list")
}

// at indexes with Python-style negative wraparound, which the blossom
// traversals rely on.
func at(s []int, i int) int {
	if i < 0 {
		i += len(s)
	}
	return s[i]
}

func rotate(s []int, i int) []int {
	return append(append([]int(nil), s[i:]...), s[:i]...)
}
