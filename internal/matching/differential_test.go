package matching_test

import (
	"math/rand"
	"testing"

	"oregami/internal/gen"
	"oregami/internal/matching"
)

// refBest is the exhaustively computed optimum: maximum weight over all
// matchings, or — under maxCardinality — the lexicographic maximum of
// (cardinality, weight).
type refBest struct {
	card   int
	weight float64
}

func (a refBest) better(b refBest, maxCard bool) bool {
	if maxCard && a.card != b.card {
		return a.card > b.card
	}
	return a.weight > b.weight
}

// referenceMatching enumerates every matching of the graph by recursion
// over vertices (first unmatched vertex either stays unmatched or pairs
// with any unmatched neighbor). Exponential, but exact — the referee for
// the blossom implementation on the ≤8-vertex graphs generated here.
func referenceMatching(n int, edges []matching.WEdge, maxCard bool) refBest {
	adj := make([][]matching.WEdge, n)
	for _, e := range edges {
		adj[e.I] = append(adj[e.I], e)
		adj[e.J] = append(adj[e.J], e)
	}
	used := make([]bool, n)
	best := refBest{}
	var rec func(v int, cur refBest)
	rec = func(v int, cur refBest) {
		for v < n && used[v] {
			v++
		}
		if v == n {
			if cur.better(best, maxCard) {
				best = cur
			}
			return
		}
		used[v] = true
		rec(v+1, cur) // leave v unmatched
		for _, e := range adj[v] {
			u := e.I + e.J - v
			if u == v || used[u] {
				continue
			}
			used[u] = true
			rec(v+1, refBest{card: cur.card + 1, weight: cur.weight + e.Weight})
			used[u] = false
		}
		used[v] = false
	}
	rec(0, refBest{})
	return best
}

// randomWeightedGraph emits a simple graph on n vertices with integer
// weights, so weight comparisons against the reference are exact.
func randomWeightedGraph(r *rand.Rand) (int, []matching.WEdge) {
	n := 2 + r.Intn(7)
	var edges []matching.WEdge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < 0.5 {
				edges = append(edges, matching.WEdge{I: i, J: j, Weight: float64(1 + r.Intn(9))})
			}
		}
	}
	return n, edges
}

// checkMate validates the structural matching invariants: symmetry, and
// every matched pair being an actual edge.
func checkMate(t *testing.T, n int, edges []matching.WEdge, mate []int) int {
	t.Helper()
	if len(mate) != n {
		t.Fatalf("mate has length %d, want %d", len(mate), n)
	}
	has := map[[2]int]bool{}
	for _, e := range edges {
		has[[2]int{e.I, e.J}] = true
		has[[2]int{e.J, e.I}] = true
	}
	card := 0
	for v, u := range mate {
		if u == -1 {
			continue
		}
		if u < 0 || u >= n || mate[u] != v {
			t.Fatalf("mate is not symmetric: mate[%d]=%d, mate[%d]=%d", v, u, u, mate[u])
		}
		if !has[[2]int{v, u}] {
			t.Fatalf("matched pair (%d,%d) is not an edge", v, u)
		}
		if v < u {
			card++
		}
	}
	return card
}

// TestBlossomVsBruteForce runs Galil's blossom algorithm against the
// exhaustive reference on random small graphs, in both modes. Weights
// are integers, so optimal weights must agree exactly.
func TestBlossomVsBruteForce(t *testing.T) {
	gen.ForEachSeed(t, 60, func(t *testing.T, seed int64, r *rand.Rand) {
		n, edges := randomWeightedGraph(r)
		for _, maxCard := range []bool{false, true} {
			mate := matching.MaxWeightMatching(n, edges, maxCard)
			card := checkMate(t, n, edges, mate)
			got := matching.MatchingWeight(mate, edges)
			want := referenceMatching(n, edges, maxCard)
			if maxCard && card != want.card {
				t.Fatalf("maxCardinality: blossom matched %d pairs, optimum %d (n=%d, edges=%v)",
					card, want.card, n, edges)
			}
			if got != want.weight {
				t.Fatalf("maxCard=%v: blossom weight %g, optimum %g (n=%d, edges=%v, mate=%v)",
					maxCard, got, want.weight, n, edges, mate)
			}
		}
	})
}
