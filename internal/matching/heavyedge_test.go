package matching

import (
	"math/rand"
	"testing"
)

// csrFromEdges builds a symmetric CSR view of an undirected edge list.
func csrFromEdges(n int, edges []WEdge) (off, adj []int32, w []float64) {
	deg := make([]int32, n+1)
	for _, e := range edges {
		deg[e.I+1]++
		deg[e.J+1]++
	}
	off = make([]int32, n+1)
	for i := 0; i < n; i++ {
		off[i+1] = off[i] + deg[i+1]
	}
	adj = make([]int32, off[n])
	w = make([]float64, off[n])
	pos := append([]int32(nil), off...)
	for _, e := range edges {
		adj[pos[e.I]], w[pos[e.I]] = int32(e.J), e.Weight
		pos[e.I]++
		adj[pos[e.J]], w[pos[e.J]] = int32(e.I), e.Weight
		pos[e.J]++
	}
	return off, adj, w
}

func checkMatching(t *testing.T, n int, mate []int32) int {
	t.Helper()
	pairs := 0
	for v := 0; v < n; v++ {
		m := mate[v]
		if m == -1 {
			continue
		}
		if m < 0 || int(m) >= n || int(m) == v {
			t.Fatalf("mate[%d] = %d out of range", v, m)
		}
		if mate[m] != int32(v) {
			t.Fatalf("mate not symmetric: mate[%d]=%d but mate[%d]=%d", v, m, m, mate[m])
		}
		if int(m) > v {
			pairs++
		}
	}
	return pairs
}

func TestHeavyEdgeCSRBasic(t *testing.T) {
	// Path 0-1-2-3 with a heavy middle edge: greedy pairs (0,1) first
	// (index order), then (2,3) — the heavy edge loses to visit order,
	// which is exactly the determinism contract.
	edges := []WEdge{{0, 1, 1}, {1, 2, 10}, {2, 3, 1}}
	off, adj, w := csrFromEdges(4, edges)
	mate := make([]int32, 4)
	if got := HeavyEdgeCSR(4, off, adj, w, nil, 0, mate); got != 2 {
		t.Fatalf("pairs = %d, want 2", got)
	}
	if mate[0] != 1 || mate[2] != 3 {
		t.Errorf("mate = %v, want [1 0 3 2]", mate)
	}

	// Star with distinct weights: the center takes its heaviest spoke.
	edges = []WEdge{{0, 1, 1}, {0, 2, 5}, {0, 3, 3}}
	off, adj, w = csrFromEdges(4, edges)
	if got := HeavyEdgeCSR(4, off, adj, w, nil, 0, mate); got != 1 {
		t.Fatalf("star pairs = %d, want 1", got)
	}
	if mate[0] != 2 || mate[2] != 0 || mate[1] != -1 || mate[3] != -1 {
		t.Errorf("star mate = %v", mate)
	}
}

func TestHeavyEdgeCSRVertexWeightCap(t *testing.T) {
	// Triangle where vertex weights forbid the heavy pairing.
	edges := []WEdge{{0, 1, 9}, {0, 2, 1}, {1, 2, 1}}
	off, adj, w := csrFromEdges(3, edges)
	vw := []int32{3, 3, 1}
	mate := make([]int32, 3)
	if got := HeavyEdgeCSR(3, off, adj, w, vw, 4, mate); got != 1 {
		t.Fatalf("pairs = %d, want 1", got)
	}
	// 0+1 = 6 > 4 is barred; 0 falls back to 2 (3+1 <= 4).
	if mate[0] != 2 || mate[1] != -1 {
		t.Errorf("mate = %v, want 0-2 matched", mate)
	}
}

// Heavy-edge matching is a valid matching and deterministic across
// repeated runs on random graphs; blossom gives the weight ceiling.
func TestHeavyEdgeCSRRandom(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(40)
		var edges []WEdge
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if r.Float64() < 0.3 {
					edges = append(edges, WEdge{a, b, float64(1 + r.Intn(20))})
				}
			}
		}
		off, adj, w := csrFromEdges(n, edges)
		mate := make([]int32, n)
		pairs := HeavyEdgeCSR(n, off, adj, w, nil, 0, mate)
		if got := checkMatching(t, n, mate); got != pairs {
			t.Fatalf("reported %d pairs, found %d", pairs, got)
		}
		again := make([]int32, n)
		HeavyEdgeCSR(n, off, adj, w, nil, 0, again)
		for v := range mate {
			if mate[v] != again[v] {
				t.Fatalf("nondeterministic at %d: %d vs %d", v, mate[v], again[v])
			}
		}
		greedy := 0.0
		for v := 0; v < n; v++ {
			if int(mate[v]) > v {
				for i := off[v]; i < off[v+1]; i++ {
					if adj[i] == mate[v] {
						greedy += w[i]
						break
					}
				}
			}
		}
		opt := MatchingWeight(MaxWeightMatching(n, edges, false), edges)
		if greedy > opt+1e-9 {
			t.Fatalf("greedy weight %v exceeds optimum %v", greedy, opt)
		}
	}
}

func TestHeavyEdgeCSRNoAllocs(t *testing.T) {
	edges := []WEdge{{0, 1, 2}, {1, 2, 3}, {2, 3, 4}, {3, 0, 5}}
	off, adj, w := csrFromEdges(4, edges)
	mate := make([]int32, 4)
	allocs := testing.AllocsPerRun(100, func() {
		HeavyEdgeCSR(4, off, adj, w, nil, 0, mate)
	})
	if allocs != 0 {
		t.Errorf("HeavyEdgeCSR allocates %v per run, want 0", allocs)
	}
}
