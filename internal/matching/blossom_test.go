package matching

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForceMax computes the true maximum matching weight (and, if
// maxCard, among maximum-cardinality matchings) by bitmask DP over
// vertex subsets: O(2^n * n^2), exact for n <= ~16.
func bruteForceMax(n int, edges []WEdge, maxCard bool) float64 {
	w := make([][]float64, n)
	has := make([][]bool, n)
	for i := range w {
		w[i] = make([]float64, n)
		has[i] = make([]bool, n)
	}
	for _, e := range edges {
		if !has[e.I][e.J] || e.Weight > w[e.I][e.J] {
			w[e.I][e.J], w[e.J][e.I] = e.Weight, e.Weight
			has[e.I][e.J], has[e.J][e.I] = true, true
		}
	}
	type val struct {
		card int
		w    float64
	}
	better := func(a, b val) bool {
		if maxCard && a.card != b.card {
			return a.card > b.card
		}
		return a.w > b.w
	}
	dp := make([]val, 1<<uint(n))
	for mask := 1; mask < 1<<uint(n); mask++ {
		// v = lowest set vertex.
		v := 0
		for mask&(1<<uint(v)) == 0 {
			v++
		}
		best := dp[mask&^(1<<uint(v))] // leave v unmatched
		for u := v + 1; u < n; u++ {
			if mask&(1<<uint(u)) != 0 && has[v][u] {
				sub := dp[mask&^(1<<uint(v))&^(1<<uint(u))]
				cand := val{sub.card + 1, sub.w + w[v][u]}
				if better(cand, best) {
					best = cand
				}
			}
		}
		dp[mask] = best
	}
	return dp[1<<uint(n)-1].w
}

func checkValidMatching(t *testing.T, n int, edges []WEdge, mate []int) {
	t.Helper()
	adjacent := make(map[[2]int]bool)
	for _, e := range edges {
		adjacent[[2]int{e.I, e.J}] = true
		adjacent[[2]int{e.J, e.I}] = true
	}
	for v := 0; v < n; v++ {
		m := mate[v]
		if m == -1 {
			continue
		}
		if mate[m] != v {
			t.Fatalf("mate not symmetric: mate[%d]=%d but mate[%d]=%d", v, m, m, mate[m])
		}
		if !adjacent[[2]int{v, m}] {
			t.Fatalf("matched pair (%d,%d) is not an edge", v, m)
		}
	}
}

func TestEmptyAndTrivial(t *testing.T) {
	if m := MaxWeightMatching(0, nil, false); len(m) != 0 {
		t.Errorf("empty graph: %v", m)
	}
	m := MaxWeightMatching(3, nil, false)
	for _, v := range m {
		if v != -1 {
			t.Errorf("no-edge graph matched something: %v", m)
		}
	}
	// Self loops ignored.
	m = MaxWeightMatching(2, []WEdge{{0, 0, 100}}, false)
	if m[0] != -1 {
		t.Errorf("self loop matched: %v", m)
	}
}

func TestSingleEdge(t *testing.T) {
	m := MaxWeightMatching(2, []WEdge{{0, 1, 1}}, false)
	if m[0] != 1 || m[1] != 0 {
		t.Errorf("single edge: %v", m)
	}
}

func TestPathChoosesMiddleOrEnds(t *testing.T) {
	// Path 0-1-2 with weights 2, 3: best is the single edge (1,2).
	m := MaxWeightMatching(3, []WEdge{{0, 1, 2}, {1, 2, 3}}, false)
	if m[1] != 2 || m[0] != -1 {
		t.Errorf("path: %v", m)
	}
	// With maxCardinality unchanged: still only one edge fits.
	m = MaxWeightMatching(3, []WEdge{{0, 1, 2}, {1, 2, 3}}, true)
	if m[1] != 2 {
		t.Errorf("path maxcard: %v", m)
	}
}

func TestNegativeWeightAvoidedUnlessForced(t *testing.T) {
	edges := []WEdge{{0, 1, 2}, {1, 2, -1}, {2, 3, 2}}
	m := MaxWeightMatching(4, edges, false)
	if m[0] != 1 || m[2] != 3 {
		t.Errorf("positive pair not chosen: %v", m)
	}
	// Force cardinality with a negative middle edge only.
	edges = []WEdge{{0, 1, -2}}
	m = MaxWeightMatching(2, edges, false)
	if m[0] != -1 {
		t.Errorf("negative edge used without maxcard: %v", m)
	}
	m = MaxWeightMatching(2, edges, true)
	if m[0] != 1 {
		t.Errorf("negative edge not used with maxcard: %v", m)
	}
}

func TestTriangleBlossom(t *testing.T) {
	// Odd cycle forces blossom handling: triangle plus pendant.
	edges := []WEdge{{0, 1, 6}, {1, 2, 6}, {0, 2, 6}, {2, 3, 5}}
	m := MaxWeightMatching(4, edges, false)
	checkValidMatching(t, 4, edges, m)
	if got, want := MatchingWeight(m, edges), 11.0; got != want {
		t.Errorf("triangle weight = %g, want %g", got, want)
	}
}

// The classic tricky cases from the reference implementation's test
// suite: nested S-blossoms, relabeling, and expansion.
func TestSBlossomRelabel(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges []WEdge
	}{
		{"s-blossom", 4, []WEdge{{0, 1, 8}, {0, 2, 9}, {1, 2, 10}, {2, 3, 7}}},
		{"s-blossom-aug", 6, []WEdge{{0, 1, 8}, {0, 2, 9}, {1, 2, 10}, {2, 3, 7}, {0, 5, 5}, {3, 4, 6}}},
		{"t-blossom-A", 6, []WEdge{{0, 1, 9}, {0, 2, 8}, {1, 2, 10}, {0, 3, 5}, {3, 4, 4}, {0, 5, 3}}},
		{"t-blossom-B", 6, []WEdge{{0, 1, 9}, {0, 2, 8}, {1, 2, 10}, {0, 3, 5}, {3, 4, 3}, {0, 5, 4}}},
		{"t-blossom-C", 6, []WEdge{{0, 1, 9}, {0, 2, 8}, {1, 2, 10}, {0, 3, 5}, {3, 4, 3}, {2, 5, 4}}},
		{"nested-s", 8, []WEdge{{0, 1, 9}, {0, 2, 9}, {1, 2, 10}, {1, 3, 8}, {2, 4, 8}, {3, 4, 10}, {4, 5, 6}}},
		{"s-to-t-relabel", 8, []WEdge{{0, 1, 10}, {0, 6, 10}, {1, 2, 12}, {2, 3, 20}, {2, 4, 20}, {3, 4, 25}, {4, 5, 10}, {5, 6, 10}, {6, 7, 8}}},
		{"nasty-expand", 10, []WEdge{{0, 1, 45}, {0, 4, 45}, {1, 2, 50}, {2, 3, 45}, {3, 4, 50}, {0, 5, 30}, {2, 8, 35}, {3, 7, 35}, {4, 6, 26}, {8, 9, 5}}},
		{"again-expand", 10, []WEdge{{0, 1, 45}, {0, 4, 45}, {1, 2, 50}, {2, 3, 45}, {3, 4, 50}, {0, 5, 30}, {2, 8, 35}, {3, 7, 26}, {4, 6, 40}, {8, 9, 5}}},
		{"expand-relabel", 10, []WEdge{{0, 1, 50}, {0, 4, 45}, {0, 5, 30}, {1, 2, 45}, {2, 3, 50}, {3, 4, 45}, {3, 7, 35}, {4, 6, 35}, {2, 8, 26}, {8, 9, 5}}},
		{"expand-t-blossom", 11, []WEdge{{0, 1, 45}, {0, 6, 45}, {1, 2, 50}, {2, 3, 45}, {3, 4, 95}, {3, 5, 94}, {4, 5, 94}, {5, 6, 50}, {0, 7, 30}, {8, 2, 35}, {4, 10, 36}, {6, 9, 26}, {10, 11, 5}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.n
			for _, e := range tc.edges {
				if e.I >= n {
					n = e.I + 1
				}
				if e.J >= n {
					n = e.J + 1
				}
			}
			m := MaxWeightMatching(n, tc.edges, false)
			checkValidMatching(t, n, tc.edges, m)
			got := MatchingWeight(m, tc.edges)
			want := bruteForceMax(n, tc.edges, false)
			if got != want {
				t.Errorf("weight = %g, want %g (mate %v)", got, want, m)
			}
		})
	}
}

func randGraph(r *rand.Rand, n, maxEdges, maxW int) []WEdge {
	if c := n * (n - 1) / 2; maxEdges > c {
		maxEdges = c
	}
	ne := r.Intn(maxEdges + 1)
	seen := make(map[[2]int]bool)
	var edges []WEdge
	for len(edges) < ne {
		i := r.Intn(n)
		j := r.Intn(n)
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		if seen[[2]int{i, j}] {
			continue
		}
		seen[[2]int{i, j}] = true
		edges = append(edges, WEdge{i, j, float64(r.Intn(maxW) + 1)})
	}
	return edges
}

func TestRandomAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 400; trial++ {
		n := 2 + r.Intn(9) // up to 10 vertices
		edges := randGraph(r, n, n*(n-1)/2, 20)
		for _, mc := range []bool{false, true} {
			m := MaxWeightMatching(n, edges, mc)
			checkValidMatching(t, n, edges, m)
			got := MatchingWeight(m, edges)
			want := bruteForceMax(n, edges, mc)
			if got != want {
				t.Fatalf("trial %d (n=%d maxcard=%v): weight %g, want %g\nedges: %v\nmate: %v",
					trial, n, mc, got, want, edges, m)
			}
			if mc {
				// Cardinality must also be maximum.
				bigM := MaxWeightMatching(n, unitWeights(edges), true)
				if Size2(m) != Size2(bigM) {
					t.Fatalf("trial %d: maxcard matching has cardinality %d, want %d",
						trial, Size2(m), Size2(bigM))
				}
			}
		}
	}
}

func unitWeights(edges []WEdge) []WEdge {
	out := make([]WEdge, len(edges))
	for i, e := range edges {
		out[i] = WEdge{e.I, e.J, 1}
	}
	return out
}

// Size2 counts matched pairs.
func Size2(mate []int) int {
	n := 0
	for v, m := range mate {
		if m > v {
			n++
		}
	}
	return n
}

// Property: matching weight is invariant under vertex relabeling.
func TestRelabelInvarianceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 3 + rr.Intn(7)
		edges := randGraph(rr, n, n*2, 10)
		perm := r.Perm(n)
		relabeled := make([]WEdge, len(edges))
		for i, e := range edges {
			relabeled[i] = WEdge{perm[e.I], perm[e.J], e.Weight}
		}
		w1 := MatchingWeight(MaxWeightMatching(n, edges, false), edges)
		w2 := MatchingWeight(MaxWeightMatching(n, relabeled, false), relabeled)
		return w1 == w2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLargeRingMatching(t *testing.T) {
	// Even cycle with uniform weights: perfect matching of n/2 edges.
	n := 200
	var edges []WEdge
	for i := 0; i < n; i++ {
		edges = append(edges, WEdge{i, (i + 1) % n, 1})
	}
	m := MaxWeightMatching(n, edges, false)
	checkValidMatching(t, n, edges, m)
	if got := MatchingWeight(m, edges); got != float64(n/2) {
		t.Errorf("ring matching weight = %g, want %d", got, n/2)
	}
}

func TestMatchingWeightParallelEdges(t *testing.T) {
	edges := []WEdge{{0, 1, 3}, {0, 1, 7}}
	m := MaxWeightMatching(2, edges, false)
	if got := MatchingWeight(m, edges); got != 7 {
		t.Errorf("parallel edge weight = %g, want 7", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range edge did not panic")
		}
	}()
	MaxWeightMatching(2, []WEdge{{0, 5, 1}}, false)
}
