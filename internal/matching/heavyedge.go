package matching

// Heavy-edge matching: the cheap, linear-time matcher multilevel
// coarsening runs at every level (Schulz & Woydt call it the standard
// coarsening matcher). Unlike the blossom algorithm it makes no
// optimality promise — it just pairs each vertex with its heaviest
// still-free neighbor — but it runs in O(|E|) with zero allocations,
// which is what lets the coarsener chew through million-edge levels.

// HeavyEdgeCSR computes a greedy heavy-edge matching over a graph in
// CSR form: vertex v's neighbors are adj[off[v]:off[v+1]] with edge
// weights w aligned slot for slot. Vertices are visited in index order;
// each unmatched vertex is paired with its heaviest unmatched neighbor,
// ties broken toward the smallest index, so the result is deterministic
// for a given CSR layout.
//
// vw optionally carries vertex weights (coarse vertices aggregate fine
// ones): when non-nil, a pair is only formed if vw[v]+vw[u] <= maxVW,
// which is how the coarsener keeps coarse vertices balanced enough for
// the final contraction's MaxTasksPerProc bound. Pass vw == nil to
// disable the cap.
//
// mate must have length n; it is overwritten with the matching
// (mate[v] == partner, or -1 when v stays single). The number of
// matched pairs is returned. No allocations are performed.
func HeavyEdgeCSR(n int, off, adj []int32, w []float64, vw []int32, maxVW int32, mate []int32) int {
	if len(mate) != n {
		panic("matching: HeavyEdgeCSR mate length mismatch")
	}
	for v := range mate[:n] {
		mate[v] = -1
	}
	pairs := 0
	for v := 0; v < n; v++ {
		if mate[v] != -1 {
			continue
		}
		best := int32(-1)
		bestW := 0.0
		for i := off[v]; i < off[v+1]; i++ {
			u := adj[i]
			if int(u) == v || mate[u] != -1 {
				continue
			}
			if vw != nil && vw[v]+vw[u] > maxVW {
				continue
			}
			if best == -1 || w[i] > bestW || (w[i] == bestW && u < best) {
				best, bestW = u, w[i]
			}
		}
		if best != -1 {
			mate[v] = best
			mate[best] = int32(v)
			pairs++
		}
	}
	return pairs
}
