package matching

import (
	"math/rand"
	"testing"
)

func TestMaximalMatchingGreedy(t *testing.T) {
	b := NewBipartite(3, 3)
	b.AddEdge(0, 0)
	b.AddEdge(1, 0)
	b.AddEdge(1, 1)
	b.AddEdge(2, 1)
	// Maximum here is 2: only y0 and y1 exist for x0..x2.
	mx, my := b.MaximalMatching()
	if Size(mx) != 2 {
		t.Errorf("greedy matched %d, want 2 (mx=%v)", Size(mx), mx)
	}
	for x, y := range mx {
		if y != -1 && my[y] != x {
			t.Errorf("inconsistent match arrays: mx=%v my=%v", mx, my)
		}
	}
}

func TestMaximalIsMaximal(t *testing.T) {
	// After greedy matching no edge may join two unmatched vertices.
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		nx, ny := 1+r.Intn(8), 1+r.Intn(8)
		b := NewBipartite(nx, ny)
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				if r.Intn(3) == 0 {
					b.AddEdge(x, y)
				}
			}
		}
		mx, my := b.MaximalMatching()
		for x := 0; x < nx; x++ {
			if mx[x] != -1 {
				continue
			}
			for _, y := range b.Adj[x] {
				if my[y] == -1 {
					t.Fatalf("trial %d: matching not maximal, edge (%d,%d) free", trial, x, y)
				}
			}
		}
	}
}

// bruteBipartiteMax finds maximum matching cardinality by augmenting-path
// search (Kuhn's algorithm), a simple independent oracle.
func bruteBipartiteMax(b *Bipartite) int {
	matchY := filled(b.NY, -1)
	var try func(x int, seen []bool) bool
	try = func(x int, seen []bool) bool {
		for _, y := range b.Adj[x] {
			if seen[y] {
				continue
			}
			seen[y] = true
			if matchY[y] == -1 || try(matchY[y], seen) {
				matchY[y] = x
				return true
			}
		}
		return false
	}
	count := 0
	for x := 0; x < b.NX; x++ {
		if try(x, make([]bool, b.NY)) {
			count++
		}
	}
	return count
}

func TestHopcroftKarpAgainstKuhn(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		nx, ny := 1+r.Intn(10), 1+r.Intn(10)
		b := NewBipartite(nx, ny)
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				if r.Intn(3) == 0 {
					b.AddEdge(x, y)
				}
			}
		}
		mx, my := b.MaximumMatching()
		got := Size(mx)
		want := bruteBipartiteMax(b)
		if got != want {
			t.Fatalf("trial %d: HK size %d, want %d", trial, got, want)
		}
		// Validity.
		for x, y := range mx {
			if y != -1 {
				if my[y] != x {
					t.Fatalf("trial %d: inconsistent matching", trial)
				}
				found := false
				for _, yy := range b.Adj[x] {
					if yy == y {
						found = true
					}
				}
				if !found {
					t.Fatalf("trial %d: matched non-edge (%d,%d)", trial, x, y)
				}
			}
		}
		// Maximal >= half of maximum.
		gx, _ := b.MaximalMatching()
		if 2*Size(gx) < want {
			t.Fatalf("trial %d: maximal matching %d below half of maximum %d", trial, Size(gx), want)
		}
	}
}

func TestBipartiteEdgeRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad edge did not panic")
		}
	}()
	NewBipartite(2, 2).AddEdge(0, 5)
}

func TestHopcroftKarpPerfect(t *testing.T) {
	// Complete bipartite K(5,5): perfect matching of size 5.
	b := NewBipartite(5, 5)
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			b.AddEdge(x, y)
		}
	}
	mx, _ := b.MaximumMatching()
	if Size(mx) != 5 {
		t.Errorf("K55 matching = %d, want 5", Size(mx))
	}
}
