package matching

// Bipartite represents a bipartite graph with nx left vertices ("X", the
// task-graph communication edges in MM-Route) and ny right vertices ("Y",
// the network links). Adj[x] lists the right vertices adjacent to x.
type Bipartite struct {
	NX, NY int
	Adj    [][]int
}

// NewBipartite creates an empty bipartite graph.
func NewBipartite(nx, ny int) *Bipartite {
	return &Bipartite{NX: nx, NY: ny, Adj: make([][]int, nx)}
}

// AddEdge connects left vertex x to right vertex y.
func (b *Bipartite) AddEdge(x, y int) {
	if x < 0 || x >= b.NX || y < 0 || y >= b.NY {
		panic("matching: bipartite edge out of range")
	}
	b.Adj[x] = append(b.Adj[x], y)
}

// MaximalMatching computes a (greedy, inclusion-maximal) matching: it
// scans left vertices in order and matches each to its first free
// neighbor. This is the O(|X| |Y|)-per-call matching the paper's MM-Route
// uses. Returns matchX (y matched to x, or -1) and matchY.
func (b *Bipartite) MaximalMatching() (matchX, matchY []int) {
	matchX = filled(b.NX, -1)
	matchY = filled(b.NY, -1)
	for x := 0; x < b.NX; x++ {
		for _, y := range b.Adj[x] {
			if matchY[y] == -1 {
				matchX[x] = y
				matchY[y] = x
				break
			}
		}
	}
	return matchX, matchY
}

// MaximumMatching computes a maximum-cardinality bipartite matching with
// the Hopcroft-Karp algorithm in O(E sqrt(V)). It is the optional
// replacement for the greedy maximal matching in MM-Route (the ablation
// of Section "Design choices" in DESIGN.md).
func (b *Bipartite) MaximumMatching() (matchX, matchY []int) {
	const inf = int(^uint(0) >> 1)
	matchX = filled(b.NX, -1)
	matchY = filled(b.NY, -1)
	dist := make([]int, b.NX)

	bfs := func() bool {
		queue := make([]int, 0, b.NX)
		for x := 0; x < b.NX; x++ {
			if matchX[x] == -1 {
				dist[x] = 0
				queue = append(queue, x)
			} else {
				dist[x] = inf
			}
		}
		found := false
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, y := range b.Adj[x] {
				nx := matchY[y]
				if nx == -1 {
					found = true
				} else if dist[nx] == inf {
					dist[nx] = dist[x] + 1
					queue = append(queue, nx)
				}
			}
		}
		return found
	}

	var dfs func(x int) bool
	dfs = func(x int) bool {
		for _, y := range b.Adj[x] {
			nx := matchY[y]
			if nx == -1 || (dist[nx] == dist[x]+1 && dfs(nx)) {
				matchX[x] = y
				matchY[y] = x
				return true
			}
		}
		dist[x] = inf
		return false
	}

	for bfs() {
		for x := 0; x < b.NX; x++ {
			if matchX[x] == -1 {
				dfs(x)
			}
		}
	}
	return matchX, matchY
}

// Size returns the cardinality of a matching given matchX.
func Size(matchX []int) int {
	n := 0
	for _, y := range matchX {
		if y != -1 {
			n++
		}
	}
	return n
}
