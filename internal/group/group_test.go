package group

import (
	"testing"

	"oregami/internal/perm"
)

// broadcastGenerators returns the generators of the paper's 8-node
// perfect broadcast example (Fig 4).
func broadcastGenerators(t *testing.T) []perm.Perm {
	t.Helper()
	comm1, err := perm.ParseCycles("(01234567)", 8)
	if err != nil {
		t.Fatal(err)
	}
	comm2, err := perm.ParseCycles("(0246)(1357)", 8)
	if err != nil {
		t.Fatal(err)
	}
	comm3, err := perm.ParseCycles("(04)(15)(26)(37)", 8)
	if err != nil {
		t.Fatal(err)
	}
	return []perm.Perm{comm1, comm2, comm3}
}

func TestGenerateBroadcastGroup(t *testing.T) {
	g, ok := Generate(broadcastGenerators(t), 8)
	if !ok {
		t.Fatal("generation aborted")
	}
	if g.Order() != 8 {
		t.Fatalf("|G| = %d, want 8", g.Order())
	}
	if !g.ActsRegularly() {
		t.Fatal("broadcast group should act regularly")
	}
	// The paper's element list E0..E7: Ei is rotation by i, i.e.
	// Ei(x) = (x+i) mod 8. Verify all are present.
	for i := 0; i < 8; i++ {
		img := make([]int, 8)
		for x := range img {
			img[x] = (x + i) % 8
		}
		p, _ := perm.FromImage(img)
		if g.IndexOf(p) == -1 {
			t.Errorf("rotation by %d missing from group", i)
		}
	}
}

func TestGenerateCutoff(t *testing.T) {
	// S3 on 3 points has 6 elements; cutoff 3 must abort.
	a, _ := perm.ParseCycles("(01)", 3)
	b, _ := perm.ParseCycles("(012)", 3)
	if _, ok := Generate([]perm.Perm{a, b}, 3); ok {
		t.Error("generation should abort beyond cutoff")
	}
	g, ok := Generate([]perm.Perm{a, b}, 6)
	if !ok || g.Order() != 6 {
		t.Errorf("S3 order = %v ok=%v", g, ok)
	}
	if g.ActsRegularly() {
		t.Error("S3 on 3 points does not act regularly (|G| != |X|)")
	}
}

func TestMulInvConsistency(t *testing.T) {
	g, _ := Generate(broadcastGenerators(t), 8)
	for i := 0; i < g.Order(); i++ {
		if g.Mul(i, g.Inv(i)) != 0 {
			t.Errorf("e%d * e%d^-1 != id", i, i)
		}
		if g.Mul(0, i) != i || g.Mul(i, 0) != i {
			t.Errorf("identity not neutral for %d", i)
		}
	}
}

func TestTaskElementBijection(t *testing.T) {
	g, _ := Generate(broadcastGenerators(t), 8)
	for tsk := 0; tsk < 8; tsk++ {
		e, err := g.ElementOfTask(tsk)
		if err != nil {
			t.Fatal(err)
		}
		if g.TaskOfElement(e) != tsk {
			t.Errorf("bijection broken at task %d", tsk)
		}
	}
}

func TestCyclicSubgroupFromComm3(t *testing.T) {
	g, _ := Generate(broadcastGenerators(t), 8)
	comm3, _ := perm.ParseCycles("(04)(15)(26)(37)", 8)
	i := g.IndexOf(comm3)
	if i == -1 {
		t.Fatal("comm3 not in group")
	}
	sub := g.CyclicSubgroup(i)
	if len(sub) != 2 {
		t.Fatalf("subgroup from comm3 has %d elements, want 2 ({E0,E4})", len(sub))
	}
	// Its non-identity member is rotation by 4.
	rot4 := make([]int, 8)
	for x := range rot4 {
		rot4[x] = (x + 4) % 8
	}
	p, _ := perm.FromImage(rot4)
	if sub[1] != g.IndexOf(p) {
		t.Errorf("subgroup = %v, want {identity, rotation-by-4}", sub)
	}
}

func TestSubgroupsOfZ8(t *testing.T) {
	g, _ := Generate(broadcastGenerators(t), 8)
	// Z8 has exactly one subgroup of each order 1, 2, 4, 8.
	for _, tc := range []struct{ k, count int }{{1, 1}, {2, 1}, {4, 1}, {8, 1}, {3, 0}} {
		subs := g.Subgroups(tc.k)
		if len(subs) != tc.count {
			t.Errorf("Z8 subgroups of order %d: %d, want %d", tc.k, len(subs), tc.count)
		}
		for _, s := range subs {
			if !g.IsNormal(s) {
				t.Errorf("subgroup %v of abelian group not normal", s)
			}
		}
	}
}

func TestSubgroupsOfS3(t *testing.T) {
	a, _ := perm.ParseCycles("(01)", 3)
	b, _ := perm.ParseCycles("(012)", 3)
	g, _ := Generate([]perm.Perm{a, b}, 0)
	// S3: three subgroups of order 2 (not normal), one of order 3 (normal).
	subs2 := g.Subgroups(2)
	if len(subs2) != 3 {
		t.Errorf("S3 subgroups of order 2: %d, want 3", len(subs2))
	}
	for _, s := range subs2 {
		if g.IsNormal(s) {
			t.Errorf("order-2 subgroup %v of S3 should not be normal", s)
		}
	}
	subs3 := g.Subgroups(3)
	if len(subs3) != 1 {
		t.Fatalf("S3 subgroups of order 3: %d, want 1", len(subs3))
	}
	if !g.IsNormal(subs3[0]) {
		t.Error("A3 should be normal in S3")
	}
}

func TestRightCosetsPartition(t *testing.T) {
	g, _ := Generate(broadcastGenerators(t), 8)
	sub := g.Subgroups(2)[0]
	cosets := g.RightCosets(sub)
	if len(cosets) != 4 {
		t.Fatalf("got %d cosets, want 4", len(cosets))
	}
	seen := make(map[int]bool)
	for _, c := range cosets {
		if len(c) != 2 {
			t.Errorf("coset size %d, want 2", len(c))
		}
		for _, e := range c {
			if seen[e] {
				t.Errorf("element %d in two cosets", e)
			}
			seen[e] = true
		}
	}
	if len(seen) != 8 {
		t.Errorf("cosets cover %d elements, want 8", len(seen))
	}
	idx := g.CosetIndexOfElements(sub)
	for ci, c := range cosets {
		for _, e := range c {
			if idx[e] != ci {
				t.Errorf("CosetIndexOfElements mismatch at %d", e)
			}
		}
	}
}

func TestQuotientEdgesNormal(t *testing.T) {
	g, _ := Generate(broadcastGenerators(t), 8)
	sub := g.Subgroups(2)[0] // {E0, E4}
	comm1, _ := perm.ParseCycles("(01234567)", 8)
	gen := g.IndexOf(comm1)
	edges, ok := g.QuotientEdges(sub, gen)
	if !ok {
		t.Fatal("quotient by normal subgroup failed")
	}
	// Quotient of Z8 by {0,4} is Z4; the +1 generator should give a
	// 4-cycle over the cosets.
	seen := map[int]bool{}
	at := 0
	for i := 0; i < 4; i++ {
		if seen[at] {
			t.Fatalf("quotient edges not a 4-cycle: %v", edges)
		}
		seen[at] = true
		at = edges[at]
	}
	if at != 0 {
		t.Errorf("quotient cycle does not close: %v", edges)
	}
	// comm3 itself collapses to a self-loop in the quotient (it is in H).
	comm3, _ := perm.ParseCycles("(04)(15)(26)(37)", 8)
	loops, ok := g.QuotientEdges(sub, g.IndexOf(comm3))
	if !ok {
		t.Fatal("comm3 quotient failed")
	}
	for c, to := range loops {
		if to != c {
			t.Errorf("comm3 should internalize: coset %d -> %d", c, to)
		}
	}
}

func TestIsPrimePower(t *testing.T) {
	for _, tc := range []struct {
		m    int
		want bool
	}{{1, false}, {2, true}, {3, true}, {4, true}, {6, false}, {8, true}, {9, true}, {12, false}, {16, true}, {27, true}, {36, false}, {49, true}} {
		if got := IsPrimePower(tc.m); got != tc.want {
			t.Errorf("IsPrimePower(%d) = %v, want %v", tc.m, got, tc.want)
		}
	}
}

// Lagrange property: every enumerated subgroup's order divides |G|, is
// closed, and contains the identity.
func TestSubgroupClosureProperty(t *testing.T) {
	a, _ := perm.ParseCycles("(01)(23)", 4)
	b, _ := perm.ParseCycles("(02)(13)", 4)
	g, _ := Generate([]perm.Perm{a, b}, 0) // Klein four-group
	if g.Order() != 4 {
		t.Fatalf("V4 order = %d", g.Order())
	}
	subs := g.Subgroups(2)
	if len(subs) != 3 {
		t.Fatalf("V4 has %d order-2 subgroups, want 3", len(subs))
	}
	for _, s := range subs {
		if s[0] != 0 {
			t.Errorf("subgroup %v missing identity", s)
		}
		for _, x := range s {
			for _, y := range s {
				if !contains(s, g.Mul(x, y)) {
					t.Errorf("subgroup %v not closed", s)
				}
			}
		}
	}
}
