package group

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oregami/internal/gen"
	"oregami/internal/perm"
)

// Property: generated groups satisfy the group axioms on their
// multiplication table — closure, identity, inverses, associativity
// (spot-checked).
func TestGroupAxiomsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(4)
		// Two random generators; cutoff keeps the group small enough.
		g1 := perm.Perm(r.Perm(n))
		g2 := perm.Perm(r.Perm(n))
		g, ok := Generate([]perm.Perm{g1, g2}, 200)
		if !ok {
			return true // group too large for the cutoff; nothing to check
		}
		order := g.Order()
		// Identity and inverses.
		for i := 0; i < order; i++ {
			if g.Mul(0, i) != i || g.Mul(i, 0) != i {
				return false
			}
			if g.Mul(i, g.Inv(i)) != 0 {
				return false
			}
		}
		// Closure + associativity spot checks.
		for trial := 0; trial < 20; trial++ {
			a, b, c := r.Intn(order), r.Intn(order), r.Intn(order)
			ab := g.Mul(a, b)
			if ab < 0 || ab >= order {
				return false
			}
			if g.Mul(ab, c) != g.Mul(a, g.Mul(b, c)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: right cosets of any enumerated subgroup partition the group
// into equal-size classes (Lagrange).
func TestLagrangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(4)
		g1 := perm.Perm(r.Perm(n))
		g2 := perm.Perm(r.Perm(n))
		g, ok := Generate([]perm.Perm{g1, g2}, 24)
		if !ok {
			return true
		}
		order := g.Order()
		for k := 1; k <= order && k <= 6; k++ {
			if order%k != 0 {
				if len(g.Subgroups(k)) != 0 {
					return false
				}
				continue
			}
			for _, sub := range g.Subgroups(k) {
				cosets := g.RightCosets(sub)
				if len(cosets) != order/k {
					return false
				}
				total := 0
				for _, c := range cosets {
					if len(c) != k {
						return false
					}
					total += len(c)
				}
				if total != order {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// cayleyGroup builds the permutation group of a generated Cayley task
// graph from its communication-phase bijections.
func cayleyGroup(t *testing.T, r *rand.Rand) (*Group, int) {
	t.Helper()
	g := gen.Cayley(r, 8)
	var gens []perm.Perm
	for _, p := range g.Comm {
		img, ok := g.PhasePermutation(p)
		if !ok {
			t.Fatalf("Cayley phase %q is not a bijection", p.Name)
		}
		pm, err := perm.FromImage(img)
		if err != nil {
			t.Fatalf("phase %q image: %v", p.Name, err)
		}
		gens = append(gens, pm)
	}
	grp, ok := Generate(gens, g.NumTasks)
	if !ok {
		t.Fatalf("group of cayley-z%d exceeded the |X| bound", g.NumTasks)
	}
	return grp, g.NumTasks
}

// Property (gen-driven): the group of a generated Cayley graph acts
// regularly — its order equals the task count and element<->task
// translation is a bijection.
func TestCayleyGroupActsRegularlyOnGenerated(t *testing.T) {
	gen.ForEachSeed(t, 40, func(t *testing.T, seed int64, r *rand.Rand) {
		grp, n := cayleyGroup(t, r)
		if grp.Order() != n {
			t.Fatalf("group order %d, want %d", grp.Order(), n)
		}
		if !grp.ActsRegularly() {
			t.Fatalf("group of order %d does not act regularly on %d tasks", grp.Order(), n)
		}
		for i := 0; i < grp.Order(); i++ {
			task := grp.TaskOfElement(i)
			back, err := grp.ElementOfTask(task)
			if err != nil || back != i {
				t.Fatalf("element %d -> task %d -> element %d (err %v)", i, task, back, err)
			}
		}
	})
}

// Property (gen-driven): every enumerated subgroup's right cosets
// partition the group into equal-size classes, and CosetIndexOfElements
// agrees with RightCosets.
func TestCosetsPartitionGroupOnGenerated(t *testing.T) {
	gen.ForEachSeed(t, 40, func(t *testing.T, seed int64, r *rand.Rand) {
		grp, n := cayleyGroup(t, r)
		for k := 1; k <= n; k++ {
			if n%k != 0 {
				continue
			}
			for _, sub := range grp.Subgroups(k) {
				if len(sub) != k {
					t.Fatalf("Subgroups(%d) returned subgroup of size %d: %v", k, len(sub), sub)
				}
				cosets := grp.RightCosets(sub)
				if len(cosets) != n/k {
					t.Fatalf("subgroup of order %d has %d cosets, want %d", k, len(cosets), n/k)
				}
				idx := grp.CosetIndexOfElements(sub)
				seen := make([]int, n) // element -> 1+coset it appeared in
				for ci, coset := range cosets {
					if len(coset) != k {
						t.Fatalf("coset %d has %d elements, want %d", ci, len(coset), k)
					}
					for _, e := range coset {
						if e < 0 || e >= n || seen[e] != 0 {
							t.Fatalf("element %d repeated or out of range across cosets", e)
						}
						seen[e] = ci + 1
						if idx[e] != ci {
							t.Fatalf("CosetIndexOfElements[%d]=%d, RightCosets says %d", e, idx[e], ci)
						}
					}
				}
				for e, s := range seen {
					if s == 0 {
						t.Fatalf("element %d not covered by any coset", e)
					}
				}
			}
		}
	})
}
