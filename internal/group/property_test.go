package group

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oregami/internal/perm"
)

// Property: generated groups satisfy the group axioms on their
// multiplication table — closure, identity, inverses, associativity
// (spot-checked).
func TestGroupAxiomsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(4)
		// Two random generators; cutoff keeps the group small enough.
		g1 := perm.Perm(r.Perm(n))
		g2 := perm.Perm(r.Perm(n))
		g, ok := Generate([]perm.Perm{g1, g2}, 200)
		if !ok {
			return true // group too large for the cutoff; nothing to check
		}
		order := g.Order()
		// Identity and inverses.
		for i := 0; i < order; i++ {
			if g.Mul(0, i) != i || g.Mul(i, 0) != i {
				return false
			}
			if g.Mul(i, g.Inv(i)) != 0 {
				return false
			}
		}
		// Closure + associativity spot checks.
		for trial := 0; trial < 20; trial++ {
			a, b, c := r.Intn(order), r.Intn(order), r.Intn(order)
			ab := g.Mul(a, b)
			if ab < 0 || ab >= order {
				return false
			}
			if g.Mul(ab, c) != g.Mul(a, g.Mul(b, c)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: right cosets of any enumerated subgroup partition the group
// into equal-size classes (Lagrange).
func TestLagrangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(4)
		g1 := perm.Perm(r.Perm(n))
		g2 := perm.Perm(r.Perm(n))
		g, ok := Generate([]perm.Perm{g1, g2}, 24)
		if !ok {
			return true
		}
		order := g.Order()
		for k := 1; k <= order && k <= 6; k++ {
			if order%k != 0 {
				if len(g.Subgroups(k)) != 0 {
					return false
				}
				continue
			}
			for _, sub := range g.Subgroups(k) {
				cosets := g.RightCosets(sub)
				if len(cosets) != order/k {
					return false
				}
				total := 0
				for _, c := range cosets {
					if len(c) != k {
						return false
					}
					total += len(c)
				}
				if total != order {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
