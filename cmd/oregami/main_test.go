package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildCmd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "oregami-cli")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func TestCLIPipeline(t *testing.T) {
	bin := buildCmd(t)
	out, err := exec.Command(bin, "-workload", "nbody", "-net", "hypercube:3").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"MAPPER class: arbitrary", "total IPC", "simulated completion time"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestCLIForceAndMeshNet(t *testing.T) {
	bin := buildCmd(t)
	out, err := exec.Command(bin, "-workload", "jacobi", "-net", "mesh:4,4", "-force", "arbitrary", "-sim=false").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "MAPPER class: arbitrary") {
		t.Errorf("force ignored:\n%s", out)
	}
}

func TestCLIMetricsShell(t *testing.T) {
	bin := buildCmd(t)
	cmd := exec.Command(bin, "-workload", "broadcast8", "-net", "hypercube:2", "-sim=false", "-shell")
	cmd.Stdin = strings.NewReader("show\nmove 0 1\nsim\nutil\nbogus\nquit\n")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"metrics shell", "moved task 0 to processor 1", "simulated completion time", "utilization", "commands:"} {
		if !strings.Contains(s, want) {
			t.Errorf("shell output missing %q:\n%s", want, s)
		}
	}
}

func TestCLIErrors(t *testing.T) {
	bin := buildCmd(t)
	for _, args := range [][]string{
		{},
		{"-workload", "nbody"},                  // no net
		{"-workload", "nbody", "-net", "bogus"}, // bad net syntax
		{"-workload", "nbody", "-net", "nosuch:3"},                       // unknown family
		{"-workload", "zzz", "-net", "hypercube:3"},                      // unknown workload
		{"-workload", "nbody", "-net", "mesh:2,2", "-force", "systolic"}, // inapplicable force
	} {
		if out, err := exec.Command(bin, args...).CombinedOutput(); err == nil {
			t.Errorf("args %v accepted:\n%s", args, out)
		}
	}
}

func TestCLIPreFailedHardware(t *testing.T) {
	bin := buildCmd(t)
	out, err := exec.Command(bin, "-workload", "nbody", "-net", "hypercube:3",
		"-fail-procs", "5", "-fail-links", "0", "-sim=false").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"degraded machine: failed procs [5]", "MAPPER class: arbitrary"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// Processor 5 must host no tasks in the rendered layout.
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "proc   5:") && !strings.HasSuffix(line, "-") {
			t.Errorf("failed processor 5 hosts tasks: %q", line)
		}
	}
}

func TestCLIInjectFaults(t *testing.T) {
	bin := buildCmd(t)
	out, err := exec.Command(bin, "-workload", "nbody", "-net", "hypercube:3",
		"-inject-faults", "step=1,proc=5", "-inject-faults", "step=2,link=3").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"repair: failed procs [5]",
		"repair: failed procs [] links [3]",
		"simulated completion time under faults",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// Malformed event syntax must be rejected at flag parse time.
	if out, err := exec.Command(bin, "-workload", "nbody", "-net", "hypercube:3",
		"-inject-faults", "step=1").CombinedOutput(); err == nil {
		t.Errorf("event with no proc/link accepted:\n%s", out)
	}
}

func TestCLIExpansionLimits(t *testing.T) {
	bin := buildCmd(t)
	out, err := exec.Command(bin, "-workload", "nbody", "-net", "hypercube:3", "-max-tasks", "4").CombinedOutput()
	if err == nil {
		t.Fatalf("expansion over -max-tasks accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "task limit 4") {
		t.Errorf("limit error not surfaced:\n%s", out)
	}
}

func TestCLIDot(t *testing.T) {
	bin := buildCmd(t)
	out, err := exec.Command(bin, "-workload", "broadcast8", "-net", "hypercube:2", "-dot").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "digraph") || !strings.Contains(string(out), "cluster_p0") {
		t.Errorf("dot output malformed:\n%s", out)
	}
}
