package main

import (
	"errors"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func buildCmd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "oregami-cli")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func TestCLIPipeline(t *testing.T) {
	bin := buildCmd(t)
	out, err := exec.Command(bin, "-workload", "nbody", "-net", "hypercube:3").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"MAPPER class: arbitrary", "total IPC", "simulated completion time"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestCLIForceAndMeshNet(t *testing.T) {
	bin := buildCmd(t)
	out, err := exec.Command(bin, "-workload", "jacobi", "-net", "mesh:4,4", "-force", "arbitrary", "-sim=false").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "MAPPER class: arbitrary") {
		t.Errorf("force ignored:\n%s", out)
	}
}

func TestCLIMetricsShell(t *testing.T) {
	bin := buildCmd(t)
	cmd := exec.Command(bin, "-workload", "broadcast8", "-net", "hypercube:2", "-sim=false", "-shell")
	cmd.Stdin = strings.NewReader("show\nmove 0 1\nsim\nutil\nbogus\nquit\n")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"metrics shell", "moved task 0 to processor 1", "simulated completion time", "utilization", "commands:"} {
		if !strings.Contains(s, want) {
			t.Errorf("shell output missing %q:\n%s", want, s)
		}
	}
}

func TestCLIErrors(t *testing.T) {
	bin := buildCmd(t)
	for _, args := range [][]string{
		{},
		{"-workload", "nbody"},                  // no net
		{"-workload", "nbody", "-net", "bogus"}, // bad net syntax
		{"-workload", "nbody", "-net", "nosuch:3"},                       // unknown family
		{"-workload", "zzz", "-net", "hypercube:3"},                      // unknown workload
		{"-workload", "nbody", "-net", "mesh:2,2", "-force", "systolic"}, // inapplicable force
	} {
		if out, err := exec.Command(bin, args...).CombinedOutput(); err == nil {
			t.Errorf("args %v accepted:\n%s", args, out)
		}
	}
}

func TestCLIPreFailedHardware(t *testing.T) {
	bin := buildCmd(t)
	out, err := exec.Command(bin, "-workload", "nbody", "-net", "hypercube:3",
		"-fail-procs", "5", "-fail-links", "0", "-sim=false").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"degraded machine: failed procs [5]", "MAPPER class: arbitrary"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// Processor 5 must host no tasks in the rendered layout.
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "proc   5:") && !strings.HasSuffix(line, "-") {
			t.Errorf("failed processor 5 hosts tasks: %q", line)
		}
	}
}

func TestCLIInjectFaults(t *testing.T) {
	bin := buildCmd(t)
	out, err := exec.Command(bin, "-workload", "nbody", "-net", "hypercube:3",
		"-inject-faults", "step=1,proc=5", "-inject-faults", "step=2,link=3").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"repair: failed procs [5]",
		"repair: failed procs [] links [3]",
		"simulated completion time under faults",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// Malformed event syntax must be rejected at flag parse time.
	if out, err := exec.Command(bin, "-workload", "nbody", "-net", "hypercube:3",
		"-inject-faults", "step=1").CombinedOutput(); err == nil {
		t.Errorf("event with no proc/link accepted:\n%s", out)
	}
}

func TestCLIExpansionLimits(t *testing.T) {
	bin := buildCmd(t)
	out, err := exec.Command(bin, "-workload", "nbody", "-net", "hypercube:3", "-max-tasks", "4").CombinedOutput()
	if err == nil {
		t.Fatalf("expansion over -max-tasks accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "task limit 4") {
		t.Errorf("limit error not surfaced:\n%s", out)
	}
}

// exitCode digs the process exit status out of an exec error; -1 means
// the command did not run or was killed by a signal.
func exitCode(err error) int {
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode()
	}
	return -1
}

func TestCLIBadFlagsExit2(t *testing.T) {
	bin := buildCmd(t)
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-D", "not-a-binding"},
		{"serve", "-no-such-flag"},
		{"serve", "-workers", "x"},
	} {
		out, err := exec.Command(bin, args...).CombinedOutput()
		if got := exitCode(err); got != 2 {
			t.Errorf("args %v: exit = %d, want 2\n%s", args, got, out)
		}
	}
}

func TestCLICheckPropagates(t *testing.T) {
	bin := buildCmd(t)
	out, err := exec.Command(bin, "-workload", "broadcast8", "-net", "hypercube:3",
		"-check", "-sim=false").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "check: mapping verified, 0 violations") {
		t.Errorf("-check did not reach the oracle:\n%s", out)
	}
}

func TestCLIServeRejectsBadAddr(t *testing.T) {
	bin := buildCmd(t)
	for _, addr := range []string{"127.0.0.1:notaport", "not an address"} {
		out, err := exec.Command(bin, "serve", "-addr", addr).CombinedOutput()
		if got := exitCode(err); got != 1 {
			t.Fatalf("serve -addr %q: exit = %d, want 1\n%s", addr, got, out)
		}
		if !strings.Contains(string(out), addr) {
			t.Errorf("serve -addr %q error does not name the address:\n%s", addr, out)
		}
	}
	// Positional arguments are a usage error too.
	out, err := exec.Command(bin, "serve", "extra").CombinedOutput()
	if got := exitCode(err); got != 1 {
		t.Errorf("serve with positional arg: exit = %d, want 1\n%s", got, out)
	}
	if !strings.Contains(string(out), "positional") {
		t.Errorf("positional-arg error not surfaced:\n%s", out)
	}
}

func TestCLIServeRoundTrip(t *testing.T) {
	bin := buildCmd(t)
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(bin, "serve", "-addr", "127.0.0.1:0", "-addr-file", addrFile)
	var buf strings.Builder
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	var addr string
	for i := 0; i < 100; i++ {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			addr = strings.TrimSpace(string(b))
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("server never wrote its address\n%s", buf.String())
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v\n%s", err, buf.String())
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d, want 200", resp.StatusCode)
	}
	// SIGTERM must drain gracefully: exit status 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Errorf("serve did not exit cleanly after SIGTERM: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "drained and stopped") {
		t.Errorf("drain message missing:\n%s", buf.String())
	}
}

func TestCLIDot(t *testing.T) {
	bin := buildCmd(t)
	out, err := exec.Command(bin, "-workload", "broadcast8", "-net", "hypercube:2", "-dot").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "digraph") || !strings.Contains(string(out), "cluster_p0") {
		t.Errorf("dot output malformed:\n%s", out)
	}
}

func TestCLIAlgoMultilevel(t *testing.T) {
	bin := buildCmd(t)
	out, err := exec.Command(bin, "-workload", "nbody", "-net", "hier:2,2,4", "-algo", "multilevel", "-sim=false", "-check").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"MAPPER class: multilevel", "refine moves", "check: mapping verified"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	out, err = exec.Command(bin, "-workload", "jacobi", "-net", "hier:4,4", "-algo", "recursive-bisection", "-sim=false").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "MAPPER class: recursive-bisection") {
		t.Errorf("baseline class missing:\n%s", out)
	}
	// -algo agreeing with -force is fine; conflicting is a usage error.
	if out, err := exec.Command(bin, "-workload", "nbody", "-net", "hypercube:3", "-algo", "arbitrary", "-force", "arbitrary", "-sim=false").CombinedOutput(); err != nil {
		t.Errorf("agreeing -algo/-force rejected: %v\n%s", err, out)
	}
	out, err = exec.Command(bin, "-workload", "nbody", "-net", "hypercube:3", "-algo", "multilevel", "-force", "canned").CombinedOutput()
	if err == nil {
		t.Fatalf("conflicting -algo/-force accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "conflicts with deprecated -force") {
		t.Errorf("conflict error not named:\n%s", out)
	}
}
