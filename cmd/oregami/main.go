// Command oregami runs the full pipeline — LaRCS compilation, MAPPER,
// METRICS — and optionally opens the textual metrics shell, the
// repository's stand-in for the paper's interactive Mac display: inspect
// the mapping, move tasks between processors, and watch the metrics and
// simulated completion time recompute.
//
// Fault tolerance: -fail-procs/-fail-links mask hardware before mapping
// (the pipeline only places and routes on the live machine), and
// -inject-faults fails hardware mid-simulation, repairing the mapping in
// degraded mode between schedule steps. -max-tasks/-max-edges bound the
// LaRCS expansion (defaults 1048576 tasks / 4194304 edges).
//
// Usage:
//
//	oregami -workload nbody -D n=15 -D s=2 -net hypercube:3
//	oregami -file prog.larcs -D n=64 -net mesh:8,8 -force arbitrary -shell
//	oregami -workload nbody -net hypercube:3 -fail-procs 5 -fail-links 0
//	oregami -workload nbody -net hypercube:3 -inject-faults step=1,proc=5
//	oregami serve -addr 127.0.0.1:8080
//
// The serve subcommand starts the long-running mapping daemon
// (internal/serve, documented in docs/SERVE.md).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"oregami/internal/analysis"
	"oregami/internal/check"
	"oregami/internal/core"
	"oregami/internal/fault"
	"oregami/internal/larcs"
	"oregami/internal/metrics"
	"oregami/internal/phase"
	"oregami/internal/route"
	"oregami/internal/sim"
	"oregami/internal/topology"
	"oregami/internal/workload"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := runServe(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "oregami serve:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "oregami:", err)
		os.Exit(1)
	}
}

type bindings map[string]int

func (b bindings) String() string { return fmt.Sprint(map[string]int(b)) }

func (b bindings) Set(s string) error {
	parts := strings.SplitN(s, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("binding must be name=value, got %q", s)
	}
	v, err := strconv.Atoi(parts[1])
	if err != nil {
		return err
	}
	b[parts[0]] = v
	return nil
}

// eventList collects repeatable -inject-faults flags.
type eventList []sim.FaultEvent

func (e *eventList) String() string { return fmt.Sprint([]sim.FaultEvent(*e)) }

func (e *eventList) Set(s string) error {
	ev, err := sim.ParseFaultEvent(s)
	if err != nil {
		return err
	}
	*e = append(*e, ev)
	return nil
}

// parseIDList parses "0,5,7" into ids.
func parseIDList(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("id list %q: %v", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// resolveAlgo merges the documented -algo flag with its deprecated
// -force alias (hidden from usage, kept parsing for old scripts).
// Using the alias prints a one-line deprecation note; setting both to
// different classes is an error.
func resolveAlgo(force, algo string) (core.Class, error) {
	if force != "" {
		fmt.Fprintln(os.Stderr, "oregami: -force is deprecated; use -algo")
	}
	if algo == "" {
		return core.Class(force), nil
	}
	if force != "" && force != algo {
		return "", fmt.Errorf("-algo %q conflicts with deprecated -force %q", algo, force)
	}
	return core.Class(algo), nil
}

// hideDeprecated replaces a flag set's usage output with one that skips
// flags whose help text starts with "deprecated:" — the flags still
// parse, they just stop advertising themselves.
func hideDeprecated(fs *flag.FlagSet) {
	fs.Usage = func() {
		w := fs.Output()
		if fs.Name() == "" {
			fmt.Fprintln(w, "Usage:")
		} else {
			fmt.Fprintf(w, "Usage of %s:\n", fs.Name())
		}
		fs.VisitAll(func(f *flag.Flag) {
			if strings.HasPrefix(f.Usage, "deprecated:") {
				return
			}
			fmt.Fprintf(w, "  -%s\n    \t%s", f.Name, f.Usage)
			if f.DefValue != "" && f.DefValue != "false" {
				fmt.Fprintf(w, " (default %v)", f.DefValue)
			}
			fmt.Fprintln(w)
		})
	}
}

func run(out *os.File) error {
	file := flag.String("file", "", "LaRCS source file")
	wname := flag.String("workload", "", "bundled workload name")
	netSpec := flag.String("net", "", "target network, e.g. hypercube:3 or mesh:4,4")
	force := flag.String("force", "", "deprecated: use -algo")
	algo := flag.String("algo", "", "algorithm class to run: canned|systolic|group-theoretic|arbitrary|multilevel|recursive-bisection (empty = auto-dispatch)")
	doSim := flag.Bool("sim", true, "simulate the phase schedule and report completion time")
	dot := flag.Bool("dot", false, "emit the mapping as Graphviz DOT and exit")
	shell := flag.Bool("shell", false, "open the interactive metrics shell after mapping")
	doCheck := flag.Bool("check", false, "verify the mapping with the post-condition oracle; violations fail the run")
	parallel := flag.Int("parallel", 0, "worker budget for MAPPER's parallel hot paths (0 = all CPUs, 1 = sequential; result is identical at every setting)")
	maxTasks := flag.Int("max-tasks", 0, "cap on the expanded task count (0 = default 1048576)")
	maxEdges := flag.Int("max-edges", 0, "cap on the expanded edge count (0 = default 4194304)")
	failProcs := flag.String("fail-procs", "", "comma-separated processor ids failed before mapping")
	failLinks := flag.String("fail-links", "", "comma-separated link ids failed before mapping")
	var injected eventList
	flag.Var(&injected, "inject-faults", "mid-simulation fault event, e.g. step=2,proc=1,link=5 (repeatable)")
	binds := bindings{}
	flag.Var(binds, "D", "parameter binding name=value (repeatable)")
	hideDeprecated(flag.CommandLine)
	flag.Parse()

	if *netSpec == "" {
		return fmt.Errorf("need -net (e.g. -net hypercube:3)")
	}
	net, err := topology.ParseSpec(*netSpec)
	if err != nil {
		return err
	}
	preProcs, err := parseIDList(*failProcs)
	if err != nil {
		return err
	}
	preLinks, err := parseIDList(*failLinks)
	if err != nil {
		return err
	}
	if len(preProcs) > 0 || len(preLinks) > 0 {
		model := fault.NewModel()
		for _, p := range preProcs {
			model.FailProcessor(p)
		}
		for _, l := range preLinks {
			model.FailLink(l)
		}
		net, err = model.Mask(net)
		if err != nil {
			return err
		}
	}

	var src, srcName string
	all := map[string]int{}
	switch {
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		src = string(data)
		srcName = *file
	case *wname != "":
		w, err := workload.ByName(*wname)
		if err != nil {
			return err
		}
		src = w.Source
		srcName = "workload:" + w.Name
		for k, v := range w.Defaults {
			all[k] = v
		}
	default:
		return fmt.Errorf("need -file or -workload")
	}
	for k, v := range binds {
		all[k] = v
	}
	// Vet before compiling: warnings go to stderr and the pipeline
	// continues; provable defects stop it before any expansion work.
	diags := analysis.VetSource(src)
	if len(diags) > 0 {
		fmt.Fprint(os.Stderr, analysis.Render(srcName, diags))
	}
	if analysis.HasErrors(diags) {
		return fmt.Errorf("%s has vet errors (see diagnostics above)", srcName)
	}
	prog, err := larcs.Parse(src)
	if err != nil {
		return err
	}
	c, err := prog.Compile(all, larcs.Limits{MaxTasks: *maxTasks, MaxEdges: *maxEdges})
	if err != nil {
		return err
	}
	if *parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0 (0 = all CPUs), got %d", *parallel)
	}
	class, err := resolveAlgo(*force, *algo)
	if err != nil {
		return err
	}
	res, err := core.Map(core.Request{Compiled: c, Net: net, Force: class, Check: *doCheck, Parallelism: *parallel})
	if err != nil {
		return err
	}
	if *doCheck {
		fmt.Fprintln(out, "check: mapping verified, 0 violations")
	}
	if *dot {
		fmt.Fprint(out, metrics.DOT(res.Mapping))
		return nil
	}
	if net.Degraded() {
		fmt.Fprintf(out, "degraded machine: failed procs %v, failed links %v (%d live)\n",
			net.FailedProcessors(), net.FailedLinks(), net.NumLive())
	}
	fmt.Fprintf(out, "MAPPER class: %s\n", res.Class)
	for _, line := range res.Trail {
		fmt.Fprintf(out, "  %s\n", line)
	}
	rep, err := metrics.Compute(res.Mapping)
	if err != nil {
		return err
	}
	fmt.Fprint(out, metrics.Render(res.Mapping, rep))
	if len(injected) > 0 {
		if c.Phases == nil {
			return fmt.Errorf("-inject-faults needs a phase expression to schedule")
		}
		steps, err := phase.Flatten(c.Phases, 1<<20)
		if err != nil {
			return err
		}
		fres, err := sim.RunWithFaults(res.Mapping, steps, sim.Config{}, injected)
		if err != nil {
			return err
		}
		for _, r := range fres.Reports {
			fmt.Fprintf(out, "%s\n", r)
		}
		fmt.Fprintf(out, "simulated completion time under faults: %g ticks\n", fres.Total)
	} else if *doSim && c.Phases != nil {
		total, err := sim.Makespan(res.Mapping, c.Phases, sim.Config{}, 1<<20)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "simulated completion time: %g ticks\n", total)
	}
	if *shell {
		return metricsShell(os.Stdin, out, res, c)
	}
	return nil
}

// metricsShell is the textual modify-and-recompute loop.
func metricsShell(in *os.File, out *os.File, res *core.Result, c *larcs.Compiled) error {
	fmt.Fprintln(out, "metrics shell: commands are show | move <task> <proc> | check | sim | util | quit")
	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "> ")
		if !sc.Scan() {
			return sc.Err()
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit", "q":
			return nil
		case "show":
			rep, err := metrics.Compute(res.Mapping)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprint(out, metrics.Render(res.Mapping, rep))
		case "move":
			if len(fields) != 3 {
				fmt.Fprintln(out, "usage: move <task> <proc>")
				continue
			}
			task, err1 := strconv.Atoi(fields[1])
			proc, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				fmt.Fprintln(out, "usage: move <task> <proc>")
				continue
			}
			if err := metrics.ReassignTask(res.Mapping, task, proc); err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			if _, err := route.RouteAll(res.Mapping, route.Options{}); err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprintf(out, "moved task %d to processor %d; routes recomputed\n", task, proc)
		case "check":
			rep, err := metrics.Compute(res.Mapping)
			if err != nil {
				rep = nil
			}
			if vs := check.Verify(c.Graph, res.Mapping.Net, res.Mapping, rep); len(vs) > 0 {
				fmt.Fprint(out, check.Render(vs))
			} else {
				fmt.Fprintln(out, "check: mapping verified, 0 violations")
			}
		case "sim":
			if c.Phases == nil {
				fmt.Fprintln(out, "no phase expression")
				continue
			}
			total, err := sim.Makespan(res.Mapping, c.Phases, sim.Config{}, 1<<20)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprintf(out, "simulated completion time: %g ticks\n", total)
		case "util":
			if c.Phases == nil {
				fmt.Fprintln(out, "no phase expression")
				continue
			}
			steps, err := phase.Flatten(c.Phases, 1<<20)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			u, err := sim.Utilize(res.Mapping, steps, sim.Config{})
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprint(out, u.Render())
		default:
			fmt.Fprintln(out, "commands: show | move <task> <proc> | check | sim | util | quit")
		}
	}
}
