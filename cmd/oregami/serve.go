package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"oregami/internal/cluster"
	"oregami/internal/serve"
)

// runServe implements the `oregami serve` subcommand: a long-running
// mapping daemon (see internal/serve and docs/SERVE.md). It blocks
// until SIGINT/SIGTERM, then drains in-flight requests and exits.
func runServe(args []string, out *os.File) error {
	fs := flag.NewFlagSet("oregami serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening")
	workers := fs.Int("workers", 0, "concurrent mapping computations (0 = GOMAXPROCS)")
	parallel := fs.Int("parallel", 0, "per-request worker budget for MAPPER's parallel hot paths (0 = GOMAXPROCS/workers; requests may lower it via options.parallelism)")
	queue := fs.Int("queue", 0, "admission queue depth beyond the workers (0 = default 64, negative = no queue)")
	cacheBytes := fs.Int64("cache-bytes", 0, "result cache budget in bytes (0 = default 64MiB, negative = cache off)")
	timeout := fs.Duration("timeout", 0, "per-request deadline ceiling (0 = default 30s)")
	stageTimeout := fs.Duration("stage-timeout", 0, "per-stage deadline ceiling (0 = default 10s)")
	drain := fs.Duration("drain", 0, "graceful shutdown budget (0 = default 10s)")
	maxTasks := fs.Int("max-tasks", 0, "cap on the expanded task count (0 = default 1048576)")
	maxEdges := fs.Int("max-edges", 0, "cap on the expanded edge count (0 = default 4194304)")
	persist := fs.Bool("persist", false, "persist cached mappings to disk and reload them at boot (implied by -state-dir)")
	stateDir := fs.String("state-dir", "", "directory for the persistent store (default oregami.state when -persist is set)")
	storeBytes := fs.Int64("store-bytes", 0, "on-disk store budget in bytes; oldest segments drop first (0 = default 256MiB)")
	nodeID := fs.String("node-id", "", "this node's id in a cluster (required with -peers)")
	peersSpec := fs.String("peers", "", "static cluster membership id=host:port,... including this node; enables consistent-hash sharding and miss proxying")
	probeInterval := fs.Duration("probe-interval", 0, "peer health probe cadence (0 = default 1s)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve takes no positional arguments, got %q", fs.Args())
	}
	var peers map[string]string
	if *peersSpec != "" {
		var err error
		if peers, err = cluster.ParsePeers(*peersSpec); err != nil {
			return err
		}
		if *nodeID == "" {
			return fmt.Errorf("-peers requires -node-id")
		}
	} else if *nodeID != "" {
		return fmt.Errorf("-node-id requires -peers")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	s := serve.New(serve.Config{
		Addr:           *addr,
		AddrFile:       *addrFile,
		Workers:        *workers,
		Parallel:       *parallel,
		Queue:          *queue,
		CacheBytes:     *cacheBytes,
		RequestTimeout: *timeout,
		StageTimeout:   *stageTimeout,
		DrainTimeout:   *drain,
		MaxTasks:       *maxTasks,
		MaxEdges:       *maxEdges,
		Persist:        *persist,
		StateDir:       *stateDir,
		StoreBytes:     *storeBytes,
		NodeID:         *nodeID,
		Peers:          peers,
		ProbeInterval:  *probeInterval,
	})
	if *nodeID != "" {
		fmt.Fprintf(out, "oregami serve: node %s in a %d-node cluster\n", *nodeID, len(peers))
	}
	fmt.Fprintf(out, "oregami serve: listening on %s\n", *addr)
	start := time.Now()
	if err := s.ListenAndServe(ctx); err != nil {
		return err
	}
	fmt.Fprintf(out, "oregami serve: drained and stopped after %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}
