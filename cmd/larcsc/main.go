// Command larcsc is the LaRCS compiler and static analyzer.
//
// Compile mode parses a LaRCS description, expands it for concrete
// parameter bindings, and prints the resulting task graph, phase
// schedule, and description-size statistics. Vet mode runs the
// internal/analysis passes over the *parametric* program — no bindings
// needed — and reports every diagnostic it can prove.
//
// Usage:
//
//	larcsc -file nbody.larcs -D n=15 -D s=2 [-dot] [-edges]
//	larcsc -workload nbody -D n=31
//	larcsc -workload nbody -D n=4095 -max-tasks 1000   # refuse huge expansions
//	larcsc vet -file prog.larcs [-json]                # static analysis only
//	larcsc vet prog1.larcs prog2.larcs
//	larcsc -vet -file prog.larcs -D n=15               # vet, then compile
//	larcsc map -file prog.larcs -D n=15 -net hypercube:3 -check
//
// Map mode runs the full MAPPER pipeline onto a target network; with
// -check the finished mapping must pass the post-condition oracle
// (internal/check), and violations print as diagnostics.
//
// Exit codes: 0 clean, 1 program defects (parse/vet/compile errors,
// oracle violations), 2 usage or I/O errors.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"oregami/internal/analysis"
	"oregami/internal/check"
	"oregami/internal/core"
	"oregami/internal/graph"
	"oregami/internal/larcs"
	"oregami/internal/phase"
	"oregami/internal/topology"
	"oregami/internal/workload"
)

// Exit codes.
const (
	exitOK      = 0
	exitDefects = 1 // the LaRCS program is broken (parse/vet/compile)
	exitUsage   = 2 // the invocation is broken (flags, I/O)
)

type bindings map[string]int

func (b bindings) String() string { return fmt.Sprint(map[string]int(b)) }

func (b bindings) Set(s string) error {
	parts := strings.SplitN(s, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("binding must be name=value, got %q", s)
	}
	v, err := strconv.Atoi(parts[1])
	if err != nil {
		return fmt.Errorf("binding %q: %v", s, err)
	}
	b[parts[0]] = v
	return nil
}

// usageError marks failures of the invocation (flags, missing files)
// rather than of the LaRCS program under analysis.
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

// errDefectsReported signals a nonzero exit after diagnostics have
// already been printed; main adds no further message.
var errDefectsReported = errors.New("diagnostics reported")

func main() {
	args := os.Args[1:]
	var err error
	switch {
	case len(args) > 0 && args[0] == "vet":
		err = runVet(args[1:])
	case len(args) > 0 && args[0] == "map":
		err = runMap(args[1:])
	default:
		err = runCompile(args)
	}
	var usage usageError
	switch {
	case err == nil:
		os.Exit(exitOK)
	case errors.As(err, &usage):
		fmt.Fprintln(os.Stderr, "larcsc:", err)
		os.Exit(exitUsage)
	default:
		if !errors.Is(err, errDefectsReported) {
			fmt.Fprintln(os.Stderr, "larcsc:", err)
		}
		os.Exit(exitDefects)
	}
}

// source is one named LaRCS input resolved from -file/-workload/args.
type source struct {
	name     string
	src      string
	defaults map[string]int
}

func loadSources(file, wname string, extra []string) ([]source, error) {
	var out []source
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, usageError{err}
		}
		out = append(out, source{name: file, src: string(data), defaults: map[string]int{}})
	}
	if wname != "" {
		w, err := workload.ByName(wname)
		if err != nil {
			return nil, usageError{err}
		}
		defaults := map[string]int{}
		for k, v := range w.Defaults {
			defaults[k] = v
		}
		out = append(out, source{name: "workload:" + w.Name, src: w.Source, defaults: defaults})
	}
	for _, f := range extra {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, usageError{err}
		}
		out = append(out, source{name: f, src: string(data), defaults: map[string]int{}})
	}
	if len(out) == 0 {
		return nil, usageError{fmt.Errorf("need -file, -workload, or file arguments (available workloads: %s)", workloadNames())}
	}
	return out, nil
}

// runVet is the vet subcommand: static analysis only, no bindings.
func runVet(args []string) error {
	fs := flag.NewFlagSet("larcsc vet", flag.ContinueOnError)
	file := fs.String("file", "", "LaRCS source file")
	wname := fs.String("workload", "", "bundled workload name instead of -file")
	asJSON := fs.Bool("json", false, "emit diagnostics as a JSON array")
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	srcs, err := loadSources(*file, *wname, fs.Args())
	if err != nil {
		return err
	}
	defects := false
	for _, s := range srcs {
		diags := analysis.VetSource(s.src)
		if analysis.HasErrors(diags) {
			defects = true
		}
		if *asJSON {
			out, err := analysis.RenderJSON(s.name, diags)
			if err != nil {
				return usageError{err}
			}
			os.Stdout.Write(out)
			fmt.Println()
		} else {
			fmt.Print(analysis.Render(s.name, diags))
		}
	}
	if defects {
		return errDefectsReported
	}
	return nil
}

// resolveAlgo merges the documented -algo flag with its deprecated
// -force alias (hidden from usage, kept parsing for old scripts).
// Using the alias prints a one-line deprecation note; setting both to
// different classes is an error.
func resolveAlgo(force, algo string) (core.Class, error) {
	if force != "" {
		fmt.Fprintln(os.Stderr, "larcsc: -force is deprecated; use -algo")
	}
	if algo == "" {
		return core.Class(force), nil
	}
	if force != "" && force != algo {
		return "", fmt.Errorf("-algo %q conflicts with deprecated -force %q", algo, force)
	}
	return core.Class(algo), nil
}

// hideDeprecated replaces a flag set's usage output with one that skips
// flags whose help text starts with "deprecated:" — the flags still
// parse, they just stop advertising themselves.
func hideDeprecated(fs *flag.FlagSet) {
	fs.Usage = func() {
		w := fs.Output()
		fmt.Fprintf(w, "Usage of %s:\n", fs.Name())
		fs.VisitAll(func(f *flag.Flag) {
			if strings.HasPrefix(f.Usage, "deprecated:") {
				return
			}
			fmt.Fprintf(w, "  -%s\n    \t%s", f.Name, f.Usage)
			if f.DefValue != "" && f.DefValue != "false" {
				fmt.Fprintf(w, " (default %v)", f.DefValue)
			}
			fmt.Fprintln(w)
		})
	}
}

// runMap compiles a program and runs the MAPPER pipeline onto a target
// network, optionally gated by the post-condition oracle.
func runMap(args []string) error {
	fs := flag.NewFlagSet("larcsc map", flag.ContinueOnError)
	file := fs.String("file", "", "LaRCS source file")
	wname := fs.String("workload", "", "bundled workload name instead of -file")
	netSpec := fs.String("net", "", "target network, e.g. hypercube:3 or mesh:4,4")
	force := fs.String("force", "", "deprecated: use -algo")
	algo := fs.String("algo", "", "algorithm class to run: canned|systolic|group-theoretic|arbitrary|multilevel|recursive-bisection (empty = auto-dispatch)")
	doCheck := fs.Bool("check", false, "verify the mapping with the post-condition oracle; violations exit 1")
	parallel := fs.Int("parallel", 0, "worker budget for MAPPER's parallel hot paths (0 = all CPUs, 1 = sequential; result is identical at every setting)")
	maxTasks := fs.Int("max-tasks", 0, "cap on the expanded task count (0 = default 1048576)")
	maxEdges := fs.Int("max-edges", 0, "cap on the expanded edge count (0 = default 4194304)")
	binds := bindings{}
	fs.Var(binds, "D", "parameter binding name=value (repeatable)")
	hideDeprecated(fs)
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	if fs.NArg() > 0 {
		return usageError{fmt.Errorf("unexpected arguments %v", fs.Args())}
	}
	if *netSpec == "" {
		return usageError{fmt.Errorf("map needs -net (e.g. -net hypercube:3)")}
	}
	if *parallel < 0 {
		return usageError{fmt.Errorf("-parallel must be >= 0 (0 = all CPUs), got %d", *parallel)}
	}
	net, err := topology.ParseSpec(*netSpec)
	if err != nil {
		return usageError{err}
	}
	srcs, err := loadSources(*file, *wname, nil)
	if err != nil {
		return err
	}
	s := srcs[0]
	for k, v := range binds {
		s.defaults[k] = v
	}
	prog, err := larcs.Parse(s.src)
	if err != nil {
		return err
	}
	c, err := prog.Compile(s.defaults, larcs.Limits{MaxTasks: *maxTasks, MaxEdges: *maxEdges})
	if err != nil {
		return err
	}
	class, err := resolveAlgo(*force, *algo)
	if err != nil {
		return usageError{err}
	}
	res, err := core.Map(core.Request{Compiled: c, Net: net, Force: class, Check: *doCheck, Parallelism: *parallel})
	if err != nil {
		var pe *core.PipelineError
		var ve *check.ViolationError
		if errors.As(err, &pe) && errors.As(pe.Err, &ve) {
			fmt.Print(check.Render(ve.Violations))
			return errDefectsReported
		}
		return err
	}
	fmt.Printf("mapped %s onto %s via %s (class %s)\n", prog.Name, net.Name, res.Mapping.Method, res.Class)
	for _, line := range res.Trail {
		fmt.Printf("  %s\n", line)
	}
	if *doCheck {
		fmt.Println("check: mapping verified, 0 violations")
	}
	return nil
}

// runCompile is the historical compile mode, optionally vetting first.
func runCompile(args []string) error {
	fs := flag.NewFlagSet("larcsc", flag.ContinueOnError)
	file := fs.String("file", "", "LaRCS source file")
	wname := fs.String("workload", "", "bundled workload name instead of -file")
	dot := fs.Bool("dot", false, "emit the task graph in Graphviz DOT format")
	edges := fs.Bool("edges", false, "list every communication edge (sorted)")
	vet := fs.Bool("vet", false, "run static analysis before compiling; vet errors abort")
	maxTasks := fs.Int("max-tasks", 0, "cap on the expanded task count (0 = default 1048576)")
	maxEdges := fs.Int("max-edges", 0, "cap on the expanded edge count (0 = default 4194304)")
	binds := bindings{}
	fs.Var(binds, "D", "parameter binding name=value (repeatable)")
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	if fs.NArg() > 0 {
		return usageError{fmt.Errorf("unexpected arguments %v (did you mean 'larcsc vet'?)", fs.Args())}
	}
	srcs, err := loadSources(*file, *wname, nil)
	if err != nil {
		return err
	}
	s := srcs[0]
	for k, v := range binds {
		s.defaults[k] = v
	}

	if *vet {
		diags := analysis.VetSource(s.src)
		fmt.Fprint(os.Stderr, analysis.Render(s.name, diags))
		if analysis.HasErrors(diags) {
			return fmt.Errorf("vet found errors; not compiling")
		}
	}
	prog, err := larcs.Parse(s.src)
	if err != nil {
		return err
	}
	c, err := prog.Compile(s.defaults, larcs.Limits{MaxTasks: *maxTasks, MaxEdges: *maxEdges})
	if err != nil {
		return err
	}
	if *dot {
		fmt.Print(c.Graph.DOT())
		return nil
	}
	fmt.Printf("algorithm %s with bindings %v\n", prog.Name, s.defaults)
	fmt.Print(c.Graph.String())
	if c.Phases != nil {
		fmt.Printf("phase expression: %s\n", c.Phases)
		occ := phase.Occurrences(c.Phases)
		for _, p := range c.Graph.Comm {
			fmt.Printf("  %-12s occurs %d time(s)\n", p.Name, occ[p.Name])
		}
	}
	fmt.Printf("description size: %d bytes; expanded graph: %d tasks + %d edges\n",
		prog.DescriptionSize(), c.Graph.NumTasks, c.Graph.NumEdges())
	if *edges {
		for _, p := range c.Graph.Comm {
			fmt.Printf("phase %s:\n", p.Name)
			for _, e := range sortedEdges(p) {
				fmt.Printf("  %s -> %s (volume %g)\n", c.Graph.Labels[e.From], c.Graph.Labels[e.To], e.Weight)
			}
		}
	}
	return nil
}

// sortedEdges returns a copy of a phase's edges ordered by
// (From, To, Weight), so -edges output is deterministic regardless of
// expansion order.
func sortedEdges(p *graph.CommPhase) []graph.Edge {
	out := append([]graph.Edge(nil), p.Edges...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Weight < b.Weight
	})
	return out
}

func workloadNames() string {
	var names []string
	for _, w := range workload.All() {
		names = append(names, w.Name)
	}
	return strings.Join(names, ", ")
}
