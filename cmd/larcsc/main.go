// Command larcsc is the LaRCS compiler: it parses a LaRCS description,
// expands it for concrete parameter bindings, and prints the resulting
// task graph, phase schedule, and description-size statistics.
//
// Usage:
//
//	larcsc -file nbody.larcs -D n=15 -D s=2 [-dot] [-edges]
//	larcsc -workload nbody -D n=31
//	larcsc -workload nbody -D n=4095 -max-tasks 1000   # refuse huge expansions
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"oregami/internal/larcs"
	"oregami/internal/phase"
	"oregami/internal/workload"
)

type bindings map[string]int

func (b bindings) String() string { return fmt.Sprint(map[string]int(b)) }

func (b bindings) Set(s string) error {
	parts := strings.SplitN(s, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("binding must be name=value, got %q", s)
	}
	v, err := strconv.Atoi(parts[1])
	if err != nil {
		return fmt.Errorf("binding %q: %v", s, err)
	}
	b[parts[0]] = v
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "larcsc:", err)
		os.Exit(1)
	}
}

func run() error {
	file := flag.String("file", "", "LaRCS source file")
	wname := flag.String("workload", "", "bundled workload name instead of -file")
	dot := flag.Bool("dot", false, "emit the task graph in Graphviz DOT format")
	edges := flag.Bool("edges", false, "list every communication edge")
	maxTasks := flag.Int("max-tasks", 0, "cap on the expanded task count (0 = default 1048576)")
	maxEdges := flag.Int("max-edges", 0, "cap on the expanded edge count (0 = default 4194304)")
	binds := bindings{}
	flag.Var(binds, "D", "parameter binding name=value (repeatable)")
	flag.Parse()

	var src string
	defaults := map[string]int{}
	switch {
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		src = string(data)
	case *wname != "":
		w, err := workload.ByName(*wname)
		if err != nil {
			return err
		}
		src = w.Source
		for k, v := range w.Defaults {
			defaults[k] = v
		}
	default:
		return fmt.Errorf("need -file or -workload (available: %s)", workloadNames())
	}
	for k, v := range binds {
		defaults[k] = v
	}

	prog, err := larcs.Parse(src)
	if err != nil {
		return err
	}
	c, err := prog.Compile(defaults, larcs.Limits{MaxTasks: *maxTasks, MaxEdges: *maxEdges})
	if err != nil {
		return err
	}
	if *dot {
		fmt.Print(c.Graph.DOT())
		return nil
	}
	fmt.Printf("algorithm %s with bindings %v\n", prog.Name, defaults)
	fmt.Print(c.Graph.String())
	if c.Phases != nil {
		fmt.Printf("phase expression: %s\n", c.Phases)
		occ := phase.Occurrences(c.Phases)
		for _, p := range c.Graph.Comm {
			fmt.Printf("  %-12s occurs %d time(s)\n", p.Name, occ[p.Name])
		}
	}
	fmt.Printf("description size: %d bytes; expanded graph: %d tasks + %d edges\n",
		prog.DescriptionSize(), c.Graph.NumTasks, c.Graph.NumEdges())
	if *edges {
		for _, p := range c.Graph.Comm {
			fmt.Printf("phase %s:\n", p.Name)
			for _, e := range p.Edges {
				fmt.Printf("  %s -> %s (volume %g)\n", c.Graph.Labels[e.From], c.Graph.Labels[e.To], e.Weight)
			}
		}
	}
	return nil
}

func workloadNames() string {
	var names []string
	for _, w := range workload.All() {
		names = append(names, w.Name)
	}
	return strings.Join(names, ", ")
}
