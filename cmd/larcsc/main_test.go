package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmd compiles this command once per test binary.
func buildCmd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "larcsc")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func TestCLIWorkload(t *testing.T) {
	bin := buildCmd(t)
	out, err := exec.Command(bin, "-workload", "nbody", "-D", "n=31").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"31 tasks", "ring", "chordal", "description size"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestCLIFileAndDot(t *testing.T) {
	bin := buildCmd(t)
	src := filepath.Join(t.TempDir(), "p.larcs")
	prog := "algorithm tiny(n);\nnodetype t 0..n-1;\ncomphase c { forall i in 0..n-2 : t(i) -> t(i+1); }\n"
	if err := os.WriteFile(src, []byte(prog), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-file", src, "-D", "n=4", "-dot").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "digraph") || !strings.Contains(string(out), "0 -> 1") {
		t.Errorf("DOT output malformed:\n%s", out)
	}
	// -edges listing.
	out, err = exec.Command(bin, "-file", src, "-D", "n=3", "-edges").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "0 -> 1 (volume 1)") {
		t.Errorf("edge listing missing:\n%s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	bin := buildCmd(t)
	// No input.
	if out, err := exec.Command(bin).CombinedOutput(); err == nil {
		t.Errorf("no-input accepted:\n%s", out)
	}
	// Unknown workload.
	if _, err := exec.Command(bin, "-workload", "zzz").CombinedOutput(); err == nil {
		t.Error("unknown workload accepted")
	}
	// Missing binding.
	if _, err := exec.Command(bin, "-workload", "nbody", "-D", "n").CombinedOutput(); err == nil {
		t.Error("malformed binding accepted")
	}
}

func TestCLIExpansionLimits(t *testing.T) {
	bin := buildCmd(t)
	out, err := exec.Command(bin, "-workload", "nbody", "-max-tasks", "4").CombinedOutput()
	if err == nil {
		t.Fatalf("expansion over -max-tasks accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "task limit 4") {
		t.Errorf("limit error not surfaced:\n%s", out)
	}
	out, err = exec.Command(bin, "-workload", "nbody", "-max-edges", "5").CombinedOutput()
	if err == nil {
		t.Fatalf("expansion over -max-edges accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "edge limit 5") {
		t.Errorf("limit error not surfaced:\n%s", out)
	}
}
