package main

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmd compiles this command once per test binary.
func buildCmd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "larcsc")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func TestCLIWorkload(t *testing.T) {
	bin := buildCmd(t)
	out, err := exec.Command(bin, "-workload", "nbody", "-D", "n=31").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"31 tasks", "ring", "chordal", "description size"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestCLIFileAndDot(t *testing.T) {
	bin := buildCmd(t)
	src := filepath.Join(t.TempDir(), "p.larcs")
	prog := "algorithm tiny(n);\nnodetype t 0..n-1;\ncomphase c { forall i in 0..n-2 : t(i) -> t(i+1); }\n"
	if err := os.WriteFile(src, []byte(prog), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-file", src, "-D", "n=4", "-dot").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "digraph") || !strings.Contains(string(out), "0 -> 1") {
		t.Errorf("DOT output malformed:\n%s", out)
	}
	// -edges listing.
	out, err = exec.Command(bin, "-file", src, "-D", "n=3", "-edges").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "0 -> 1 (volume 1)") {
		t.Errorf("edge listing missing:\n%s", out)
	}
}

// exitCode runs the binary and returns its exit code plus output.
func exitCode(t *testing.T, bin string, args ...string) (int, string) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("run %v: %v\n%s", args, err, out)
	}
	return ee.ExitCode(), string(out)
}

func TestCLIErrors(t *testing.T) {
	bin := buildCmd(t)
	// Usage failures exit 2: no input, unknown workload, malformed
	// binding, unreadable file.
	for _, args := range [][]string{
		{},
		{"-no-such-flag"},
		{"-workload", "zzz"},
		{"-workload", "nbody", "-D", "n"},
		{"-file", filepath.Join(t.TempDir(), "missing.larcs")},
		{"vet"},
		{"vet", "-no-such-flag"},
		{"vet", filepath.Join(t.TempDir(), "missing.larcs")},
	} {
		if code, out := exitCode(t, bin, args...); code != 2 {
			t.Errorf("%v: exit %d, want 2\n%s", args, code, out)
		}
	}
	// Program defects exit 1: a parse error in the source.
	bad := filepath.Join(t.TempDir(), "bad.larcs")
	if err := os.WriteFile(bad, []byte("algorithm broken(\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out := exitCode(t, bin, "-file", bad); code != 1 {
		t.Errorf("parse error: exit %d, want 1\n%s", code, out)
	}
}

func TestCLIVet(t *testing.T) {
	bin := buildCmd(t)
	dir := t.TempDir()
	buggy := filepath.Join(dir, "buggy.larcs")
	prog := "algorithm buggy(n);\nnodetype t 0..n-1;\ncomphase c { forall i in 0..n-1 : t(i) -> t(i+1); }\n"
	if err := os.WriteFile(buggy, []byte(prog), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out := exitCode(t, bin, "vet", "-file", buggy)
	if code != 1 {
		t.Errorf("vet of buggy program: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "[oob]") || !strings.Contains(out, "buggy.larcs:3:") {
		t.Errorf("vet output missing oob diagnostic with position:\n%s", out)
	}
	// JSON mode decodes and carries the same code.
	code, out = exitCode(t, bin, "vet", "-json", "-file", buggy)
	if code != 1 {
		t.Errorf("vet -json: exit %d, want 1\n%s", code, out)
	}
	var diags []map[string]interface{}
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("vet -json output is not JSON: %v\n%s", err, out)
	}
	foundOOB := false
	for _, d := range diags {
		if d["code"] == "oob" {
			foundOOB = true
		}
	}
	if !foundOOB {
		t.Errorf("vet -json missing oob diagnostic: %v", diags)
	}

	// A clean workload vets silently with exit 0 — no bindings needed.
	code, out = exitCode(t, bin, "vet", "-workload", "nbody")
	if code != 0 || out != "" {
		t.Errorf("vet of nbody: exit %d output %q, want 0 and empty", code, out)
	}

	// Positional file arguments work too.
	if code, _ := exitCode(t, bin, "vet", buggy); code != 1 {
		t.Errorf("vet with positional file: exit %d, want 1", code)
	}

	// -vet on the compile path aborts compilation on errors...
	code, out = exitCode(t, bin, "-vet", "-file", buggy, "-D", "n=4")
	if code != 1 || !strings.Contains(out, "not compiling") {
		t.Errorf("-vet did not abort compile: exit %d\n%s", code, out)
	}
	// ...and stays quiet on a clean program.
	code, out = exitCode(t, bin, "-vet", "-workload", "nbody", "-D", "n=7")
	if code != 0 || !strings.Contains(out, "description size") {
		t.Errorf("-vet broke clean compile: exit %d\n%s", code, out)
	}
}

func TestCLIEdgesSorted(t *testing.T) {
	bin := buildCmd(t)
	out, err := exec.Command(bin, "-workload", "nbody", "-D", "n=7", "-edges").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	// Within each phase the "<from> -> <to>" lines must be sorted.
	var prev string
	for _, line := range strings.Split(string(out), "\n") {
		if strings.HasPrefix(line, "phase ") {
			prev = ""
			continue
		}
		if !strings.Contains(line, " -> ") {
			continue
		}
		if prev != "" && line < prev {
			t.Fatalf("-edges output unsorted: %q after %q\n%s", line, prev, out)
		}
		prev = line
	}
	// And two runs agree byte for byte.
	out2, err := exec.Command(bin, "-workload", "nbody", "-D", "n=7", "-edges").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out2)
	}
	if string(out) != string(out2) {
		t.Error("-edges output not deterministic across runs")
	}
}

func TestCLIExpansionLimits(t *testing.T) {
	bin := buildCmd(t)
	out, err := exec.Command(bin, "-workload", "nbody", "-max-tasks", "4").CombinedOutput()
	if err == nil {
		t.Fatalf("expansion over -max-tasks accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "task limit 4") {
		t.Errorf("limit error not surfaced:\n%s", out)
	}
	out, err = exec.Command(bin, "-workload", "nbody", "-max-edges", "5").CombinedOutput()
	if err == nil {
		t.Fatalf("expansion over -max-edges accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "edge limit 5") {
		t.Errorf("limit error not surfaced:\n%s", out)
	}
}

func TestCLIAlgo(t *testing.T) {
	bin := buildCmd(t)
	out, err := exec.Command(bin, "map", "-workload", "jacobi", "-net", "hier:2,2,4", "-algo", "recursive-bisection").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "class recursive-bisection") {
		t.Errorf("class missing:\n%s", out)
	}
	out, err = exec.Command(bin, "map", "-workload", "jacobi", "-net", "hier:2,2,4", "-algo", "multilevel").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "class multilevel") {
		t.Errorf("class missing:\n%s", out)
	}
	// Conflicting -algo/-force is a usage error (exit 2).
	if code, out := exitCode(t, bin, "map", "-workload", "jacobi", "-net", "hier:2,2,4", "-algo", "multilevel", "-force", "canned"); code != 2 || !strings.Contains(out, "conflicts with deprecated -force") {
		t.Errorf("conflict: exit %d, want 2 with named conflict\n%s", code, out)
	}
}
