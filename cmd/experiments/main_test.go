package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildCmd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "experiments")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

// TestFigureExperimentsGolden pins the key reproduced facts: the exact
// group elements of Fig 4, the optimal IPC of Fig 5, and the dilation
// bound of C1.
func TestFigureExperimentsGolden(t *testing.T) {
	bin := buildCmd(t)
	out, err := exec.Command(bin, "-run", "F4,F5,C1").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		// Fig 4, character for character with the paper.
		"E3 = (03614725)",
		"E5 = (05274163)",
		"E7 = (07654321)",
		"subgroup {E0,E4} from generator comm3",
		"map[comm1:0 comm2:0 comm3:2]",
		// Fig 5.
		"total IPC (measured): 6",
		// C1: no row may exceed the bound.
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(s, "EXCEEDED") {
		t.Error("C1 reports a dilation above the 1.2 bound")
	}
}

func TestDeterministicOutput(t *testing.T) {
	bin := buildCmd(t)
	a, err := exec.Command(bin, "-run", "F1,F5,F6,C3,C4").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, a)
	}
	b, err := exec.Command(bin, "-run", "F1,F5,F6,C3,C4").CombinedOutput()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("experiment output is not deterministic across runs")
	}
}

func TestExtensionsRun(t *testing.T) {
	bin := buildCmd(t)
	out, err := exec.Command(bin, "-run", "E1,E2,E3").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"synchrony set 0", "combining tree", "max load"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestUnknownExperimentFails(t *testing.T) {
	bin := buildCmd(t)
	if out, err := exec.Command(bin, "-run", "Z9").CombinedOutput(); err == nil {
		t.Errorf("unknown experiment accepted:\n%s", out)
	}
}
