// Command experiments regenerates every figure and quantitative claim of
// the paper (see DESIGN.md's per-experiment index):
//
//	F1  system overview: full pipeline on the n-body problem
//	F2  n-body task graph + LaRCS description (Fig 2)
//	F3  MAPPER dispatch taxonomy (Fig 3)
//	F4  group-theoretic contraction of the 8-node perfect broadcast (Fig 4)
//	F5  MWM-Contract on the 12-task example (Fig 5)
//	F6  MM-Route of the 15-body chordal phase on the 8-node hypercube (Fig 6)
//	C1  binomial tree -> mesh: average dilation <= 1.2 (Section 4.1)
//	C2  group generation cost scales as O(|X|^2) (Section 4.2.2)
//	C3  MWM-Contract vs greedy-only and random contraction (Section 4.3)
//	C4  MM-Route contention vs oblivious routing (Section 4.4)
//	C5  LaRCS description is ~10x smaller than the expanded graph (Section 3)
//	E1-E3  the Section 6 extensions (scheduling, aggregation, spawning)
//
// Usage: experiments [-run F4,C1] (default all).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"oregami/internal/aggregate"
	"oregami/internal/canned"
	"oregami/internal/contract"
	"oregami/internal/core"
	"oregami/internal/graph"
	"oregami/internal/group"
	"oregami/internal/mapping"
	"oregami/internal/metrics"
	"oregami/internal/perm"
	"oregami/internal/route"
	"oregami/internal/sched"
	"oregami/internal/sim"
	"oregami/internal/spawn"
	"oregami/internal/topology"
	"oregami/internal/workload"
)

var experiments = []struct {
	id   string
	name string
	run  func()
}{
	{"F1", "system overview: full pipeline on the n-body problem", runF1},
	{"F2", "n-body task graph and LaRCS description (Fig 2)", runF2},
	{"F3", "MAPPER dispatch taxonomy (Fig 3)", runF3},
	{"F4", "group-theoretic contraction of the perfect broadcast (Fig 4)", runF4},
	{"F5", "MWM-Contract on the 12-task example (Fig 5)", runF5},
	{"F6", "MM-Route of the 15-body chordal phase (Fig 6)", runF6},
	{"C1", "binomial tree -> mesh average dilation <= 1.2", runC1},
	{"C2", "group generation scales as O(|X|^2)", runC2},
	{"C3", "MWM-Contract vs baselines", runC3},
	{"C4", "MM-Route contention vs oblivious routing", runC4},
	{"C5", "LaRCS description compactness", runC5},
	{"E1", "extension: task synchrony sets and scheduling directives (Sec 6)", runE1},
	{"E2", "extension: aggregation topology selection (Sec 6)", runE2},
	{"E3", "extension: dynamically spawned tasks (Sec 6)", runE3},
}

func main() {
	runList := flag.String("run", "all", "comma-separated experiment ids, or all")
	flag.Parse()
	want := map[string]bool{}
	if *runList != "all" {
		for _, id := range strings.Split(*runList, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	ran := 0
	for _, e := range experiments {
		if *runList != "all" && !want[e.id] {
			continue
		}
		fmt.Printf("==== %s: %s ====\n", e.id, e.name)
		e.run()
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "experiments: no experiment matched -run")
		os.Exit(1)
	}
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// runF1: the Fig 1 pipeline, end to end, with the simulator standing in
// for the target machine.
func runF1() {
	w, err := workload.ByName("nbody")
	must(err)
	c, err := w.Compile(map[string]int{"n": 15, "s": 2})
	must(err)
	net := topology.Hypercube(3)
	res, err := core.Map(core.Request{Compiled: c, Net: net})
	must(err)
	fmt.Printf("LaRCS     : %d tasks, %d edges, phase expr %s\n",
		c.Graph.NumTasks, c.Graph.NumEdges(), c.Phases)
	fmt.Printf("MAPPER    : class %s, method %s\n", res.Class, res.Mapping.Method)
	rep, err := metrics.Compute(res.Mapping)
	must(err)
	fmt.Printf("METRICS   : IPC %g/%g, imbalance %.3f\n", rep.TotalIPC, rep.TotalVolume, rep.Load.Imbalance)
	total, err := sim.Makespan(res.Mapping, c.Phases, sim.Config{}, 1<<20)
	must(err)
	fmt.Printf("simulator : completion time %g ticks\n", total)
	fmt.Println("paper     : describes the same four-stage flow (Fig 1); no numbers to match")
}

// runF2: the Fig 2 task graph.
func runF2() {
	w, err := workload.ByName("nbody")
	must(err)
	c, err := w.Compile(map[string]int{"n": 15, "s": 2})
	must(err)
	ring := c.Graph.CommPhaseByName("ring")
	chordal := c.Graph.CommPhaseByName("chordal")
	fmt.Printf("ring edges    : i -> (i+1) mod 15    (%d edges)\n", len(ring.Edges))
	fmt.Printf("chordal edges : i -> (i+8) mod 15    (%d edges)\n", len(chordal.Edges))
	fmt.Printf("phase expr    : %s\n", c.Phases)
	fmt.Printf("paper         : ((ring; compute1)^((n+1)/2); chordal; compute2)^s with n=15, s=2\n")
	ok := true
	for _, e := range ring.Edges {
		if e.To != (e.From+1)%15 {
			ok = false
		}
	}
	for _, e := range chordal.Edges {
		if e.To != (e.From+8)%15 {
			ok = false
		}
	}
	fmt.Printf("edge functions match the paper: %v\n", ok)
}

// runF3: one workload through each dispatcher branch.
func runF3() {
	cases := []struct {
		workload  string
		overrides map[string]int
		net       *topology.Network
		expect    core.Class
	}{
		{"jacobi", map[string]int{"n": 4}, topology.Mesh(4, 4), core.ClassCanned},
		{"systolicmm", map[string]int{"n": 4}, topology.Linear(4), core.ClassSystolic},
		{"broadcast8", nil, topology.Hypercube(2), core.ClassGroup},
		{"nbody", map[string]int{"n": 15, "s": 1}, topology.Hypercube(3), core.ClassArbitrary},
	}
	fmt.Printf("%-12s %-14s %-16s %-16s\n", "workload", "network", "class (measured)", "class (expected)")
	for _, tc := range cases {
		w, err := workload.ByName(tc.workload)
		must(err)
		c, err := w.Compile(tc.overrides)
		must(err)
		res, err := core.Map(core.Request{Compiled: c, Net: tc.net})
		must(err)
		fmt.Printf("%-12s %-14s %-16s %-16s\n", tc.workload, tc.net.Name, res.Class, tc.expect)
	}
}

// runF4: the paper's worked example, element by element.
func runF4() {
	w, err := workload.ByName("broadcast8")
	must(err)
	c, err := w.Compile(nil)
	must(err)
	var gens []perm.Perm
	for _, p := range c.Graph.Comm {
		img, _ := c.Graph.PhasePermutation(p)
		pm, _ := perm.FromImage(img)
		gens = append(gens, pm)
		fmt.Printf("%s = %s\n", p.Name, pm)
	}
	g, ok := group.Generate(gens, 8)
	if !ok {
		must(fmt.Errorf("group generation aborted"))
	}
	fmt.Printf("|G| = %d = |X|, regular action: %v\n", g.Order(), g.ActsRegularly())
	// Print E0..E7 in the paper's order (rotation amount = task of elem).
	byTask := make([]perm.Perm, 8)
	for i, e := range g.Elements {
		byTask[g.TaskOfElement(i)] = e
	}
	for t, e := range byTask {
		fmt.Printf("E%d = %-24s <-> task%d\n", t, e.String(), t)
	}
	part, info, err := contract.GroupContract(c.Graph, 4)
	must(err)
	var subNames []string
	for _, e := range info.Subgroup {
		subNames = append(subNames, fmt.Sprintf("E%d", g.TaskOfElement(e)))
	}
	fmt.Printf("subgroup {%s} from generator %s (normal=%v, Sylow guarantee=%v)\n",
		strings.Join(subNames, ","), info.FromGenerator, info.Normal, info.SylowGuaranteed)
	clusters := map[int][]int{}
	for t, cl := range part {
		clusters[cl] = append(clusters[cl], t)
	}
	var keys []int
	for k := range clusters {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		fmt.Printf("cluster %d: tasks %v\n", k, clusters[k])
	}
	fmt.Printf("messages internalized per cluster: %v\n", info.InternalizedPerCluster)
	fmt.Println("paper: subgroup {E0,E4} from comm3 = (04)(15)(26)(37); 2 messages internalized per cluster")
}

// runF5: the Fig 5 contraction.
func runF5() {
	g := workload.Fig5Graph()
	part, err := contract.MWMContract(g, contract.Options{Processors: 3, MaxTasksPerProc: 4})
	must(err)
	clusters := map[int][]int{}
	for t, c := range part {
		clusters[c] = append(clusters[c], t)
	}
	for c := 0; c < len(clusters); c++ {
		fmt.Printf("processor %d: tasks %v\n", c, clusters[c])
	}
	fmt.Printf("total IPC (measured): %g\n", g.EdgeCut(part))
	fmt.Println("total IPC (paper)   : 6, optimal for this instance")
	gre, err := contract.GreedyOnly(g, 3, 4)
	must(err)
	fmt.Printf("greedy-only baseline: %g\n", g.EdgeCut(gre))
	fmt.Printf("random baseline     : %g\n", g.EdgeCut(contract.Random(g, 3, 1)))
}

// runF6: the Fig 6 routing table.
func runF6() {
	net := topology.Hypercube(3)
	pairs := workload.Fig6Pairs()
	fmt.Println("chordal phase of the 15-body problem on hypercube(3); clusters {i, i+8} on node i")
	fmt.Printf("%-10s %-10s %-8s %-22s %s\n", "message", "src->dst", "#routes", "choices (first two)", "assigned route (links)")
	routes, stats, err := route.MMRoute(net, pairs, route.Options{})
	if err != nil {
		panic(fmt.Sprintf("experiments: routing Fig 6 pairs: %v", err))
	}
	for i, p := range pairs {
		count := net.CountShortestRoutes(p[0], p[1])
		desc, choices := "local", "-"
		if p[0] != p[1] {
			desc = fmt.Sprint(routes[i])
			var cs []string
			for _, r := range net.ShortestRoutes(p[0], p[1], 2) {
				cs = append(cs, fmt.Sprint(r))
			}
			choices = strings.Join(cs, " ")
		}
		fmt.Printf("%2d->%-6d %d->%-8d %-8d %-22s %s\n", i, (i+8)%15, p[0], p[1], count, choices, desc)
	}
	fmt.Printf("matching rounds: %d, max link contention (measured): %d\n", stats.Rounds, stats.MaxContention)
	ec := route.ECube(net, pairs)
	fmt.Printf("e-cube baseline max contention: %d\n", route.MaxContention(net, ec))
	fmt.Println("paper: maximal matchings assign distinct links per round -> low contention (no number given)")
}

// runC1: the average-dilation sweep.
func runC1() {
	fmt.Printf("%-4s %-10s %-12s %-12s %-12s\n", "k", "mesh", "avg dilation", "max dilation", "bound 1.2")
	for k := 2; k <= 16; k++ {
		rows := 1 << uint((k+1)/2)
		cols := 1 << uint(k/2)
		net := topology.Mesh(rows, cols)
		e, err := canned.BinomialIntoMesh(k, net)
		must(err)
		sum, count, maxD := 0, 0, 0
		for v := 1; v < 1<<uint(k); v++ {
			d := net.Distance(e.Proc[v], e.Proc[v&(v-1)])
			sum += d
			count++
			if d > maxD {
				maxD = d
			}
		}
		avg := float64(sum) / float64(count)
		verdict := "ok"
		if avg > 1.2 {
			verdict = "EXCEEDED"
		}
		fmt.Printf("%-4d %-10s %-12.4f %-12d %s\n", k, net.Name, avg, maxD, verdict)
	}
	fmt.Println("paper: average dilation bounded by 1.2 for arbitrarily large binomial tree and mesh")
}

// runC2: group generation scaling.
func runC2() {
	fmt.Printf("%-8s %-14s %-10s\n", "|X|", "generate time", "t/|X|^2 (ns)")
	var base float64
	for _, n := range []int{64, 128, 256, 512, 1024} {
		gens := circulantGenerators(n)
		start := time.Now()
		g, ok := group.Generate(gens, n)
		el := time.Since(start)
		if !ok || g.Order() != n {
			must(fmt.Errorf("generation failed for n=%d", n))
		}
		norm := float64(el.Nanoseconds()) / float64(n*n)
		if base == 0 {
			base = norm
		}
		fmt.Printf("%-8d %-14s %-10.2f\n", n, el.Round(time.Microsecond), norm)
	}
	fmt.Println("paper: computing the cycle notation of all elements dominates -> O(|X|^2);")
	fmt.Println("       the normalized column should stay roughly flat")
}

func circulantGenerators(n int) []perm.Perm {
	mk := func(shift int) perm.Perm {
		img := make([]int, n)
		for i := range img {
			img[i] = (i + shift) % n
		}
		p, _ := perm.FromImage(img)
		return p
	}
	return []perm.Perm{mk(1), mk(2), mk(n / 2)}
}

// runC3: contraction quality across random graphs.
func runC3() {
	fmt.Printf("%-6s %-6s %-12s %-12s %-12s\n", "tasks", "procs", "MWM IPC", "greedy IPC", "random IPC")
	for _, tc := range []struct{ n, p int }{{16, 4}, {24, 6}, {32, 8}, {48, 8}} {
		var mwm, gre, rnd float64
		const trials = 10
		for trial := 0; trial < trials; trial++ {
			g := workload.RandomTaskGraph(tc.n, 0.3, 20, int64(trial*100+tc.n))
			b := 2 * ((tc.n + 2*tc.p - 1) / (2 * tc.p))
			part, err := contract.MWMContract(g, contract.Options{Processors: tc.p, MaxTasksPerProc: b})
			must(err)
			mwm += g.EdgeCut(part)
			gp, err := contract.GreedyOnly(g, tc.p, b)
			must(err)
			gre += g.EdgeCut(gp)
			rnd += g.EdgeCut(contract.Random(g, tc.p, int64(trial)))
		}
		fmt.Printf("%-6d %-6d %-12.1f %-12.1f %-12.1f\n",
			tc.n, tc.p, mwm/trials, gre/trials, rnd/trials)
	}
	fmt.Println("paper: MWM-Contract optimal for V <= 2P, near-optimal beyond; expect MWM <= greedy << random")
}

// runC4: routing contention across workloads, MM-Route vs oblivious.
func runC4() {
	fmt.Printf("%-12s %-14s %-10s %-10s %-10s %-12s %-12s\n",
		"workload", "network", "MM-Route", "e-cube", "random", "sim(MM)", "sim(ecube)")
	cases := []struct {
		name      string
		overrides map[string]int
		net       *topology.Network
	}{
		{"nbody", map[string]int{"n": 15, "s": 1}, topology.Hypercube(3)},
		{"nbody", map[string]int{"n": 31, "s": 1}, topology.Hypercube(4)},
		{"fft16", nil, topology.Hypercube(4)},
		{"voting", map[string]int{"n": 16}, topology.Hypercube(4)},
	}
	for _, tc := range cases {
		w, err := workload.ByName(tc.name)
		must(err)
		c, err := w.Compile(tc.overrides)
		must(err)
		res, err := core.Map(core.Request{Compiled: c, Net: tc.net})
		must(err)
		mmWorst := 0
		for _, st := range res.RouteStats {
			if st.MaxContention > mmWorst {
				mmWorst = st.MaxContention
			}
		}
		simMM, err := sim.Makespan(res.Mapping, c.Phases, sim.Config{}, 1<<20)
		must(err)
		// Re-route the same contraction+embedding obliviously.
		ecWorst, rdWorst := reRouteWorst(res.Mapping, "ecube"), reRouteWorst(res.Mapping, "random")
		must(route.RouteAllBaseline(res.Mapping, "ecube", 1))
		simEC, err := sim.Makespan(res.Mapping, c.Phases, sim.Config{}, 1<<20)
		must(err)
		fmt.Printf("%-12s %-14s %-10d %-10d %-10d %-12.0f %-12.0f\n",
			tc.name, tc.net.Name, mmWorst, ecWorst, rdWorst, simMM, simEC)
	}
	fmt.Println("paper: phase-aware matching evenly distributes edges over links (no numbers given);")
	fmt.Println("       expect MM-Route <= e-cube <= random on worst-phase contention")
}

func reRouteWorst(m *mapping.Mapping, kind string) int {
	saved := m.Routes
	m.Routes = map[string][]topology.Route{}
	must(route.RouteAllBaseline(m, kind, 1))
	worst := 0
	for _, routes := range m.Routes {
		if c := route.MaxContention(m.Net, routes); c > worst {
			worst = c
		}
	}
	m.Routes = saved
	return worst
}

// runC5: description compactness.
func runC5() {
	fmt.Printf("%-12s %-22s %-10s %-14s %-8s\n", "workload", "instance", "descr (B)", "graph (elems)", "ratio")
	rows := []struct {
		name      string
		overrides map[string]int
	}{
		{"nbody", map[string]int{"n": 101, "s": 1}},
		{"nbody", map[string]int{"n": 1001, "s": 1}},
		{"jacobi", map[string]int{"n": 32}},
		{"matmul", map[string]int{"n": 32}},
		{"binomial", map[string]int{"k": 10}},
		{"annealing", map[string]int{"n": 512}},
	}
	for _, rw := range rows {
		w, err := workload.ByName(rw.name)
		must(err)
		c, err := w.Compile(rw.overrides)
		must(err)
		desc := c.Program.DescriptionSize()
		gsize := c.Graph.NumTasks + c.Graph.NumEdges()
		var kv []string
		for k, v := range rw.overrides {
			kv = append(kv, fmt.Sprintf("%s=%d", k, v))
		}
		sort.Strings(kv)
		fmt.Printf("%-12s %-22s %-10d %-14d %-8.1f\n",
			rw.name, strings.Join(kv, " "), desc, gsize, float64(gsize)/float64(desc))
	}
	fmt.Println("paper: LaRCS code is an order of magnitude smaller than the graph; ratio should exceed ~10x for large instances")
}

// runE1: synchrony sets for the multiplexed n-body mapping.
func runE1() {
	w, err := workload.ByName("nbody")
	must(err)
	c, err := w.Compile(map[string]int{"n": 15, "s": 1})
	must(err)
	res, err := core.Map(core.Request{Compiled: c, Net: topology.Hypercube(3)})
	must(err)
	s, err := sched.Build(res.Mapping)
	must(err)
	fmt.Print(s.Render(res.Mapping))
	for _, ph := range []string{"ring", "chordal"} {
		a, err := s.Alignment(res.Mapping, ph)
		must(err)
		fmt.Printf("phase %-8s synchrony alignment %.2f\n", ph, a)
	}
	fmt.Println("paper: proposes task synchrony sets + path-expression directives (Sec 6); no numbers")
}

// runE2: literal gather vs synthesized combining tree.
func runE2() {
	g := graph.New("gather", 16)
	p := g.AddCommPhase("collect")
	for i := 1; i < 16; i++ {
		g.AddEdge(p, i, 0, 1)
	}
	res, err := core.MapGraph(g, topology.Hypercube(4), core.ClassArbitrary)
	must(err)
	cmp, err := aggregate.Replace(res.Mapping, "collect")
	must(err)
	fmt.Printf("literal routing : max link load %d, total hops %d\n", cmp.LiteralMaxLoad, cmp.LiteralHops)
	fmt.Printf("combining tree  : max link load %d, total hops %d, depth %d\n",
		cmp.TreeMaxLoad, cmp.TreeHops, cmp.Tree.Depth)
	fmt.Println("paper: any spanning tree suffices for aggregation; avoid overspecified topologies (Sec 6)")
}

// runE3: binary-tree spawning with incremental placement.
func runE3() {
	b, err := spawn.NewBinaryTree(5)
	must(err)
	im, err := spawn.NewIncrementalMapping(b, topology.Hypercube(4))
	must(err)
	fmt.Printf("%-5s %-7s %-9s %-18s\n", "gen", "tasks", "max load", "avg parent dist")
	fmt.Printf("%-5d %-7d %-9d %-18s\n", 0, len(im.Proc), im.MaxLoad(), "-")
	for im.Step() {
		fmt.Printf("%-5d %-7d %-9d %-18.2f\n", im.Generation(), len(im.Proc), im.MaxLoad(), im.AvgParentDistance())
	}
	fmt.Println("paper: spawning pattern known a priori (full binary tree); placed tasks never migrate (Sec 6)")
}
