package oregami

import (
	"strings"
	"testing"
)

const nbodySrc = `
algorithm nbody(n);
import s;
nodetype body 0..n-1;
nodesymmetric;
comphase ring {
    forall i in 0..n-1 : body(i) -> body((i+1) mod n) volume 1;
}
comphase chordal {
    forall i in 0..n-1 : body(i) -> body((i + (n+1)/2) mod n) volume 1;
}
exphase compute1 cost n;
exphase compute2 cost n;
phases ((ring; compute1)^((n+1)/2); chordal; compute2)^s;
`

func TestEndToEndNBody(t *testing.T) {
	comp, err := Compile(nbodySrc, map[string]int{"n": 15, "s": 2})
	if err != nil {
		t.Fatal(err)
	}
	if comp.NumTasks() != 15 || comp.NumEdges() != 30 {
		t.Fatalf("tasks=%d edges=%d", comp.NumTasks(), comp.NumEdges())
	}
	if !strings.Contains(comp.PhaseExpression(), "chordal") {
		t.Errorf("phase expr = %q", comp.PhaseExpression())
	}
	net, err := NewNetwork("hypercube", 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := comp.Map(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Class() != "arbitrary" {
		t.Errorf("class = %s", m.Class())
	}
	rep, err := m.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalIPC <= 0 {
		t.Error("no IPC reported")
	}
	out, err := m.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "total IPC") {
		t.Errorf("render missing summary: %s", out)
	}
	total, err := m.Simulate(SimConfig{}, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if total <= 0 {
		t.Errorf("makespan = %g", total)
	}
	steps, err := m.SimulateSteps(SimConfig{}, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps.Steps) != 36 {
		t.Errorf("steps = %d, want 36", len(steps.Steps))
	}
}

func TestWorkloadsListAndCompile(t *testing.T) {
	ws := Workloads()
	if len(ws) < 10 {
		t.Fatalf("only %d workloads", len(ws))
	}
	for name := range ws {
		if _, err := CompileWorkload(name, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := CompileWorkload("nosuch", nil); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestMapOptionsForce(t *testing.T) {
	comp, err := CompileWorkload("jacobi", map[string]int{"n": 4})
	if err != nil {
		t.Fatal(err)
	}
	net, _ := NewNetwork("mesh", 4, 4)
	m, err := comp.Map(net, &MapOptions{Force: "arbitrary"})
	if err != nil {
		t.Fatal(err)
	}
	if m.Class() != "arbitrary" {
		t.Errorf("force ignored: %s", m.Class())
	}
	if len(m.Trail()) == 0 {
		t.Error("no trail")
	}
}

func TestReassignLoop(t *testing.T) {
	comp, _ := CompileWorkload("nbody", map[string]int{"n": 15, "s": 1})
	net, _ := NewNetwork("hypercube", 3)
	m, err := comp.Map(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := m.Simulate(SimConfig{}, 0)
	old := m.ProcessorOf(0)
	if err := m.ReassignTask(0, (old+1)%8); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	after, err := m.Simulate(SimConfig{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if after <= 0 || before <= 0 {
		t.Error("simulation failed after reassignment")
	}
	if _, err := m.RouteOf("ring", 0); err != nil {
		t.Error(err)
	}
	if _, err := m.RouteOf("zzz", 0); err == nil {
		t.Error("unknown phase accepted")
	}
}

func TestCompileErrorsSurface(t *testing.T) {
	if _, err := Compile("algorithm broken(", nil); err == nil {
		t.Error("syntax error accepted")
	}
	if _, err := Compile(nbodySrc, map[string]int{"n": 5}); err == nil {
		t.Error("missing binding accepted")
	}
	if _, err := NewNetwork("nosuch", 1); err == nil {
		t.Error("unknown network accepted")
	}
}
