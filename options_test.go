package oregami

import (
	"errors"
	"testing"
	"time"
)

func TestNormalizeRejectsInvalidOptions(t *testing.T) {
	cases := []struct {
		name   string
		opts   MapOptions
		option string
	}{
		{"negative parallelism", MapOptions{Parallelism: -1}, "Parallelism"},
		{"negative timeout", MapOptions{Timeout: -time.Second}, "Timeout"},
		{"negative stage timeout", MapOptions{StageTimeout: -time.Second}, "StageTimeout"},
		{"stage timeout swallows timeout", MapOptions{Timeout: time.Second, StageTimeout: 2 * time.Second}, "StageTimeout"},
		{"stage timeout equals timeout", MapOptions{Timeout: time.Second, StageTimeout: time.Second}, "StageTimeout"},
		{"negative max tasks", MapOptions{MaxTasksPerProc: -2}, "MaxTasksPerProc"},
		{"unknown force class", MapOptions{Force: "quantum"}, "Force"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.opts.Normalize()
			var oe *OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("got %v, want *OptionError", err)
			}
			if oe.Option != tc.option {
				t.Fatalf("OptionError.Option = %q, want %q", oe.Option, tc.option)
			}
			if oe.Error() == "" || oe.Reason == "" {
				t.Fatal("empty error text")
			}
		})
	}
}

func TestNormalizeAcceptsValidOptions(t *testing.T) {
	valid := []MapOptions{
		{},
		{Parallelism: 0},
		{Parallelism: 8, Force: "arbitrary", Refine: true},
		{Timeout: 2 * time.Second, StageTimeout: time.Second},
		{StageTimeout: time.Second}, // no whole-pipeline bound: any stage bound is fine
		{Force: "group-theoretic"},
	}
	for _, opts := range valid {
		if _, err := opts.Normalize(); err != nil {
			t.Errorf("Normalize(%+v) = %v, want nil", opts, err)
		}
	}
}

func TestNormalizeReturnsCopyAndHandlesNil(t *testing.T) {
	var nilOpts *MapOptions
	got, err := nilOpts.Normalize()
	if err != nil || got == nil {
		t.Fatalf("nil receiver: got %v, %v", got, err)
	}
	in := &MapOptions{Parallelism: 3}
	out, err := in.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	out.Parallelism = 99
	out.Force = "canned"
	if in.Parallelism != 3 || in.Force != "" {
		t.Fatalf("Normalize mutated its receiver: %+v", in)
	}
}

func TestMapRejectsInvalidOptionsWithTypedError(t *testing.T) {
	comp, err := Compile(nbodySrc, map[string]int{"n": 15, "s": 2})
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork("hypercube", 3)
	if err != nil {
		t.Fatal(err)
	}
	_, err = comp.Map(net, &MapOptions{Parallelism: -4})
	var oe *OptionError
	if !errors.As(err, &oe) || oe.Option != "Parallelism" {
		t.Fatalf("Map with Parallelism=-4: got %v, want *OptionError on Parallelism", err)
	}
}

func TestMapParallelismIsInvisibleInResult(t *testing.T) {
	comp, err := Compile(nbodySrc, map[string]int{"n": 15, "s": 2})
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork("hypercube", 3)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := comp.Map(net, &MapOptions{Parallelism: 1, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	parl, err := comp.Map(net, &MapOptions{Parallelism: 4, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	for task := 0; task < comp.NumTasks(); task++ {
		if seq.ProcessorOf(task) != parl.ProcessorOf(task) {
			t.Fatalf("task %d placed on %d sequentially but %d at parallelism 4",
				task, seq.ProcessorOf(task), parl.ProcessorOf(task))
		}
	}
	if seq.TotalIPC() != parl.TotalIPC() {
		t.Fatalf("TotalIPC differs: %v vs %v", seq.TotalIPC(), parl.TotalIPC())
	}
	a, err := seq.Render()
	if err != nil {
		t.Fatal(err)
	}
	b, err := parl.Render()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("rendered METRICS display differs between parallelism 1 and 4")
	}
}

func TestWorkloadsReturnsCopy(t *testing.T) {
	ws := Workloads()
	if len(ws) == 0 {
		t.Fatal("no workloads")
	}
	for name := range ws {
		ws[name] = "poisoned"
	}
	ws["bogus"] = "injected"
	again := Workloads()
	if _, ok := again["bogus"]; ok {
		t.Fatal("caller mutation leaked into the registry")
	}
	for name, about := range again {
		if about == "poisoned" {
			t.Fatalf("description of %q poisoned by caller mutation", name)
		}
	}
	if _, err := CompileWorkload("nbody", nil); err != nil {
		t.Fatalf("registry unusable after caller mutation: %v", err)
	}
}
