// Package oregami is a Go reproduction of the OREGAMI mapping tools
// (Lo, Rajopadhye, Gupta, Keldsen, Mohamed, Telle: "OREGAMI: Software
// Tools for Mapping Parallel Computations to Parallel Architectures",
// University of Oregon, 1990): LaRCS, a description language for regular
// parallel computations; MAPPER, a library of contraction, embedding,
// and routing algorithms; and METRICS, mapping analysis with a
// modify-and-recompute loop.
//
// The typical flow is three calls:
//
//	comp, err := oregami.Compile(larcsSource, map[string]int{"n": 15, "s": 2})
//	net, err := oregami.NewNetwork("hypercube", 3)
//	m, err := comp.MapContext(ctx, net, &oregami.MapOptions{Parallelism: 0})
//
// after which m exposes the mapping, its metrics, an ASCII rendering,
// and a completion-time simulation. MapContext is the primary mapping
// entry point; Map is a convenience wrapper for callers without a
// context. Options are validated by MapOptions.Normalize — invalid
// combinations return a typed *OptionError rather than being silently
// clamped. See docs/API.md for the stability tier of every exported
// symbol.
package oregami

import (
	"context"
	"fmt"
	"time"

	"oregami/internal/aggregate"
	"oregami/internal/analysis"
	"oregami/internal/check"
	"oregami/internal/core"
	"oregami/internal/fault"
	"oregami/internal/graph"
	"oregami/internal/larcs"
	"oregami/internal/metrics"
	"oregami/internal/phase"
	"oregami/internal/route"
	"oregami/internal/sched"
	"oregami/internal/sim"
	"oregami/internal/spawn"
	"oregami/internal/topology"
	"oregami/internal/workload"
)

// Computation is a compiled LaRCS program: the expanded task graph plus
// the ground phase expression.
type Computation struct {
	compiled *larcs.Compiled
}

// Network is a processor interconnection topology. The stable surface
// is the accessor methods — Processors, Family, Instance, Shape,
// Neighbors, Alive, and friends; the exported struct fields exist for
// the internal packages and may be reorganized without notice (they are
// tier "internal" in docs/API.md).
type Network = topology.Network

// NewNetwork constructs a network by family name: ring(n), linear(n),
// mesh(r,c), torus(r,c), hypercube(d), cbtree(depth), binomial(k),
// butterfly(k), ccc(k), complete(n), star(n).
func NewNetwork(kind string, params ...int) (*Network, error) {
	return topology.ByName(kind, params...)
}

// Diagnostic is one finding of the LaRCS static analyzer: a position,
// severity ("warning" or "error"), stable machine-readable code, message,
// and an optional suggested fix. The stable surface is the methods —
// Location, IsError, String — plus the Code and Message fields; the
// remaining struct fields may be reorganized without notice.
type Diagnostic = analysis.Diag

// Vet runs the static analyzer over a LaRCS source program *without*
// parameter bindings: symbolic interval analysis of edge index
// expressions (out-of-bounds node references, division/modulo by zero,
// self-loops, empty ranges), phase-expression reachability (unreferenced
// phases, dead ^0 repetitions, unused nodetypes), and a counterexample
// search refuting false nodesymmetric claims. Diagnostics come back
// sorted by position; an empty slice means the program is clean.
func Vet(src string) []Diagnostic { return analysis.VetSource(src) }

// VetHasErrors reports whether any diagnostic is an error (as opposed
// to a warning). Programs with vet errors will fail to Compile or
// produce malformed graphs for every binding the analysis covered.
func VetHasErrors(diags []Diagnostic) bool { return analysis.HasErrors(diags) }

// RenderDiagnostics formats diagnostics one per line as
// "file:line:col: severity: message [code]".
func RenderDiagnostics(file string, diags []Diagnostic) string {
	return analysis.Render(file, diags)
}

// Compile parses a LaRCS source program and expands it for the given
// parameter/import bindings.
func Compile(src string, bindings map[string]int) (*Computation, error) {
	prog, err := larcs.Parse(src)
	if err != nil {
		return nil, err
	}
	c, err := prog.Compile(bindings, larcs.Limits{})
	if err != nil {
		return nil, err
	}
	return &Computation{compiled: c}, nil
}

// CompileWorkload compiles one of the bundled example workloads (see
// Workloads) with optional parameter overrides.
func CompileWorkload(name string, overrides map[string]int) (*Computation, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	c, err := w.Compile(overrides)
	if err != nil {
		return nil, err
	}
	return &Computation{compiled: c}, nil
}

// Workloads lists the bundled example workload names with one-line
// descriptions. The returned map is a fresh copy on every call:
// mutating it cannot affect the workload registry or later calls.
func Workloads() map[string]string {
	out := make(map[string]string)
	for _, w := range workload.All() {
		out[w.Name] = w.About
	}
	return out
}

// NumTasks returns the number of tasks in the expanded task graph.
func (c *Computation) NumTasks() int { return c.compiled.Graph.NumTasks }

// NumEdges returns the number of communication edges over all phases.
func (c *Computation) NumEdges() int { return c.compiled.Graph.NumEdges() }

// Graph returns the underlying task graph (read-only use expected).
func (c *Computation) Graph() *graph.TaskGraph { return c.compiled.Graph }

// PhaseExpression renders the ground phase expression, or "".
func (c *Computation) PhaseExpression() string {
	if c.compiled.Phases == nil {
		return ""
	}
	return c.compiled.Phases.String()
}

// DescriptionSize returns the LaRCS description size in bytes (comments
// and whitespace stripped), the quantity behind the paper's compactness
// claim.
func (c *Computation) DescriptionSize() int {
	return c.compiled.Program.DescriptionSize()
}

// MapOptions tune the MAPPER dispatcher. The zero value is valid and
// maps with every default. Options are validated by Normalize (which
// Map and MapContext call for you): invalid values return a typed
// *OptionError instead of being silently clamped.
type MapOptions struct {
	// Force restricts the dispatcher to one algorithm class: "canned",
	// "systolic", "group-theoretic", "arbitrary", "multilevel", or
	// "recursive-bisection". Empty tries the first four in order; the
	// last two — the scale mappers of internal/multilevel — only run
	// when forced (they exist for task graphs far beyond what the exact
	// pipeline contracts in one round, up to n=1e6; see
	// docs/MULTILEVEL.md).
	Force string
	// MaxTasksPerProc is MWM-Contract's load-balance bound B (0 =
	// derive from task and processor counts).
	MaxTasksPerProc int
	// MaximumMatchingRouter swaps MM-Route's greedy maximal matching
	// for a maximum matching per round.
	MaximumMatchingRouter bool
	// Refine applies local-search refinement (Kernighan-Lin swaps after
	// contraction, pairwise exchange after embedding) on the arbitrary
	// path.
	Refine bool
	// Faults masks the named hardware as failed before dispatch: the
	// pipeline only places tasks on and routes over the live machine.
	Faults *FaultModel
	// Timeout bounds the whole pipeline: when it expires, Map returns a
	// *PipelineError wrapping context.DeadlineExceeded. Zero means no
	// bound.
	Timeout time.Duration
	// StageTimeout bounds only the expensive MWM contraction stage; on
	// expiry the dispatcher degrades to the cheaper Stone/greedy
	// contraction (recorded in Trail) instead of failing. Zero disables.
	StageTimeout time.Duration
	// Check runs the post-condition oracle on the finished mapping:
	// partition coverage, embedding injectivity into live processors,
	// route walkability over live links, per-phase conflict freedom, and
	// an independent recomputation of the METRICS values. Violations
	// fail Map with a *PipelineError (stage "check") wrapping a
	// *ViolationError.
	Check bool
	// Parallelism bounds the worker count of MAPPER's parallel hot
	// paths: MWM-Contract candidate-gain scoring, MM-Route's per-phase
	// fan-out, and the check stage's METRICS recomputation. Zero means
	// "auto" (one worker per available CPU); 1 forces the sequential
	// path; negative values are rejected by Normalize. The mapping
	// produced is bit-identical at every setting — parallelism only
	// changes wall-clock time, never the result (see docs/PARALLEL.md).
	Parallelism int
}

// OptionError reports an invalid MapOptions field combination found by
// Normalize. Option names the offending field; Reason says what is
// wrong with it.
type OptionError struct {
	Option string
	Reason string
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("oregami: invalid option %s: %s", e.Option, e.Reason)
}

// Normalize validates opts and returns a normalized copy (nil receiver
// means all defaults). It rejects, with a typed *OptionError:
//
//   - Parallelism < 0 (the budget is "auto" at 0, else a worker count)
//   - negative Timeout or StageTimeout
//   - StageTimeout >= Timeout when both are set (the stage degradation
//     window would never fire before the whole pipeline dies)
//   - an unknown Force class
//   - MaxTasksPerProc < 0
//
// The receiver is never modified; Map and MapContext operate on the
// returned copy.
func (o *MapOptions) Normalize() (*MapOptions, error) {
	out := &MapOptions{}
	if o != nil {
		*out = *o
	}
	if out.Parallelism < 0 {
		return nil, &OptionError{Option: "Parallelism", Reason: fmt.Sprintf("must be >= 0 (0 = auto), got %d", out.Parallelism)}
	}
	if out.Timeout < 0 {
		return nil, &OptionError{Option: "Timeout", Reason: fmt.Sprintf("must be >= 0, got %v", out.Timeout)}
	}
	if out.StageTimeout < 0 {
		return nil, &OptionError{Option: "StageTimeout", Reason: fmt.Sprintf("must be >= 0, got %v", out.StageTimeout)}
	}
	if out.Timeout > 0 && out.StageTimeout >= out.Timeout {
		return nil, &OptionError{Option: "StageTimeout", Reason: fmt.Sprintf("%v does not fit inside Timeout %v; the degraded-contraction fallback could never run", out.StageTimeout, out.Timeout)}
	}
	if out.MaxTasksPerProc < 0 {
		return nil, &OptionError{Option: "MaxTasksPerProc", Reason: fmt.Sprintf("must be >= 0 (0 = derive), got %d", out.MaxTasksPerProc)}
	}
	switch core.Class(out.Force) {
	case "", core.ClassCanned, core.ClassSystolic, core.ClassGroup, core.ClassArbitrary,
		core.ClassMultilevel, core.ClassBisect:
	default:
		return nil, &OptionError{Option: "Force", Reason: fmt.Sprintf("unknown algorithm class %q (want canned, systolic, group-theoretic, arbitrary, multilevel, or recursive-bisection)", out.Force)}
	}
	return out, nil
}

// FaultModel is a set of failed processors and links.
type FaultModel = fault.Model

// NewFaultModel returns an empty fault model; add failures with
// FailProcessor and FailLink.
func NewFaultModel() *FaultModel { return fault.NewModel() }

// FaultInjector draws random failures from a seeded source.
type FaultInjector = fault.Injector

// NewFaultInjector returns a deterministic seeded fault injector.
func NewFaultInjector(seed int64) *FaultInjector { return fault.NewInjector(seed) }

// RepairReport describes one degraded-mode repair: what failed, which
// tasks migrated where, which phases were rerouted, and metric deltas.
type RepairReport = fault.RepairReport

// PipelineError names the MAPPER pipeline stage that failed on
// cancellation, deadline expiry, or a contained panic.
type PipelineError = core.PipelineError

// Mapping is a completed mapping with its provenance.
type Mapping struct {
	res  *core.Result
	comp *larcs.Compiled
}

// Map runs MAPPER without cancellation; it is MapContext with
// context.Background(). Prefer MapContext in servers and anywhere a
// deadline or cancellation signal exists.
func (c *Computation) Map(net *Network, opts *MapOptions) (*Mapping, error) {
	return c.MapContext(context.Background(), net, opts)
}

// MapContext is the primary mapping entry point: it validates opts
// (returning a typed *OptionError on invalid combinations), then runs
// the MAPPER pipeline — contraction, embedding, routing, and the
// optional post-condition check — under ctx. The pipeline's inner
// loops check ctx cooperatively, and cancellation or deadline expiry
// returns a *PipelineError naming the interrupted stage.
func (c *Computation) MapContext(ctx context.Context, net *Network, opts *MapOptions) (*Mapping, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	if opts.Faults != nil && !opts.Faults.Empty() {
		masked, err := opts.Faults.Mask(net)
		if err != nil {
			return nil, err
		}
		net = masked
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	res, err := core.Map(core.Request{
		Compiled:        c.compiled,
		Net:             net,
		Force:           core.Class(opts.Force),
		MaxTasksPerProc: opts.MaxTasksPerProc,
		Refine:          opts.Refine,
		Route:           route.Options{UseMaximum: opts.MaximumMatchingRouter},
		Ctx:             ctx,
		StageTimeout:    opts.StageTimeout,
		Check:           opts.Check,
		Parallelism:     opts.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	return &Mapping{res: res, comp: c.compiled}, nil
}

// Class reports which MAPPER algorithm class produced the mapping:
// "canned", "systolic", "group-theoretic", or "arbitrary".
func (m *Mapping) Class() string { return string(m.res.Class) }

// Method describes the concrete algorithms used.
func (m *Mapping) Method() string { return m.res.Mapping.Method }

// Trail returns the dispatcher's decision log.
func (m *Mapping) Trail() []string { return append([]string(nil), m.res.Trail...) }

// ProcessorOf returns the processor hosting the given task.
func (m *Mapping) ProcessorOf(task int) int { return m.res.Mapping.ProcOf(task) }

// TasksPerProcessor returns the task count per processor.
func (m *Mapping) TasksPerProcessor() []int { return m.res.Mapping.TasksPerProc() }

// TotalIPC returns the total interprocessor communication volume.
func (m *Mapping) TotalIPC() float64 { return m.res.Mapping.TotalIPC() }

// Metrics computes the METRICS report for the mapping.
type Metrics = metrics.Report

// Metrics computes load, link, and overall metrics.
func (m *Mapping) Metrics() (*Metrics, error) {
	return metrics.Compute(m.res.Mapping)
}

// Render produces the ASCII METRICS display.
func (m *Mapping) Render() (string, error) {
	r, err := m.Metrics()
	if err != nil {
		return "", err
	}
	return metrics.Render(m.res.Mapping, r), nil
}

// SimConfig configures the completion-time simulation.
type SimConfig = sim.Config

// Simulate executes the computation's phase schedule on the mapped
// machine model and returns the completion time. maxSteps bounds the
// flattened schedule length (0 = unbounded).
func (m *Mapping) Simulate(cfg SimConfig, maxSteps int) (float64, error) {
	return sim.Makespan(m.res.Mapping, m.comp.Phases, cfg, maxSteps)
}

// SimulateSteps runs the simulation and returns the per-step breakdown.
func (m *Mapping) SimulateSteps(cfg SimConfig, maxSteps int) (*sim.Result, error) {
	if m.comp.Phases == nil {
		return nil, fmt.Errorf("oregami: computation has no phase expression")
	}
	steps, err := phase.Flatten(m.comp.Phases, maxSteps)
	if err != nil {
		return nil, err
	}
	return sim.Run(m.res.Mapping, steps, cfg)
}

// ReassignTask moves a task to a processor (the METRICS modification
// loop); routes are invalidated and recomputed. The move is atomic: if
// rerouting fails (e.g. the target is unreachable on a degraded
// machine), the mapping rolls back to its previous state.
func (m *Mapping) ReassignTask(task, proc int) error {
	inner := m.res.Mapping
	snap := inner.Clone()
	if err := metrics.ReassignTask(inner, task, proc); err != nil {
		return err
	}
	if _, err := route.RouteAll(inner, route.Options{}); err != nil {
		inner.Part, inner.Place, inner.Routes = snap.Part, snap.Place, snap.Routes
		return fmt.Errorf("oregami: reassigning task %d to processor %d: %w (mapping unchanged)", task, proc, err)
	}
	return nil
}

// Repair remaps around the failures in model without recomputing the
// mapping from scratch: the network is masked, tasks on failed
// processors evacuate to the nearest live processor, and the affected
// phases are rerouted around dead links. The repair is atomic — on
// error the mapping is unchanged. Successive repairs union their
// failures.
func (m *Mapping) Repair(model *FaultModel) (*RepairReport, error) {
	return fault.Repair(m.res.Mapping, model)
}

// SimulateWithFaults executes the phase schedule while failing hardware
// mid-run per the events, repairing the mapping in degraded mode between
// steps. The mapping itself is not modified. maxSteps bounds the
// flattened schedule length (0 = unbounded).
func (m *Mapping) SimulateWithFaults(cfg SimConfig, maxSteps int, events []FaultEvent) (*sim.FaultyResult, error) {
	if m.comp.Phases == nil {
		return nil, fmt.Errorf("oregami: computation has no phase expression")
	}
	steps, err := phase.Flatten(m.comp.Phases, maxSteps)
	if err != nil {
		return nil, err
	}
	return sim.RunWithFaults(m.res.Mapping, steps, cfg, events)
}

// FaultEvent fails processors and links just before a schedule step.
type FaultEvent = sim.FaultEvent

// RouteOf returns the link-id route of the k-th edge of a phase.
func (m *Mapping) RouteOf(phaseName string, edge int) ([]int, error) {
	routes, ok := m.res.Mapping.Routes[phaseName]
	if !ok {
		return nil, fmt.Errorf("oregami: phase %q is not routed", phaseName)
	}
	if edge < 0 || edge >= len(routes) {
		return nil, fmt.Errorf("oregami: edge %d out of range", edge)
	}
	return append([]int(nil), routes[edge]...), nil
}

// Validate re-checks all structural invariants of the mapping.
func (m *Mapping) Validate() error { return m.res.Mapping.Validate() }

// Violation is one broken mapping invariant found by the post-condition
// oracle: a stable machine-readable Kind ("partition", "embedding",
// "walk", "dead-link", "phase-conflict", "metrics"), the communication
// phase when phase-scoped, and a human-readable detail.
type Violation = check.Violation

// ViolationError is the error a checked Map returns on oracle failure;
// it carries the full violation list.
type ViolationError = check.ViolationError

// RenderViolations formats violations one per line ("check: kind: ..."),
// stable and diffable like the vet diagnostics.
func RenderViolations(vs []Violation) string { return check.Render(vs) }

// Check runs the post-condition oracle on the mapping as it stands —
// including after ReassignTask or Repair — and returns every violated
// invariant (nil when the mapping is valid). The METRICS values are
// recomputed independently and compared exactly.
func (m *Mapping) Check() []Violation {
	inner := m.res.Mapping
	rep, err := metrics.Compute(inner)
	if err != nil {
		rep = nil // structural violations below explain why
	}
	return check.Verify(m.comp.Graph, inner.Net, inner, rep)
}

// --- Section 6 extensions -----------------------------------------------

// Schedule computes task synchrony sets and per-processor scheduling
// directives (the paper's Section 6 scheduling extension).
type Schedule = sched.Schedule

// Schedule builds the synchrony-set schedule for this mapping.
func (m *Mapping) Schedule() (*Schedule, error) {
	return sched.Build(m.res.Mapping)
}

// RenderSchedule renders the synchrony sets and path-expression
// directives.
func (m *Mapping) RenderSchedule() (string, error) {
	s, err := m.Schedule()
	if err != nil {
		return "", err
	}
	return s.Render(m.res.Mapping), nil
}

// AggregationAnalysis compares the literal routing of a single-collector
// phase against a synthesized spanning-tree aggregation (the paper's
// Section 6 "avoid overspecification" extension).
type AggregationAnalysis = aggregate.Result

// AnalyzeAggregation runs the comparison for the named phase.
func (m *Mapping) AnalyzeAggregation(phaseName string) (*AggregationAnalysis, error) {
	return aggregate.Replace(m.res.Mapping, phaseName)
}

// BinaryTreeSpawner builds the Section 6 dynamic-spawning tracker for a
// full binary tree of the given depth on a network: tasks spawn
// generation by generation and are placed incrementally without moving
// earlier tasks.
func BinaryTreeSpawner(depth int, net *Network) (*spawn.IncrementalMapping, error) {
	b, err := spawn.NewBinaryTree(depth)
	if err != nil {
		return nil, err
	}
	return spawn.NewIncrementalMapping(b, net)
}
