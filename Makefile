GO ?= go

.PHONY: build test vet race fuzz lint check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the repair invariants (seed corpus + 10s).
fuzz:
	$(GO) test -run=FuzzRepair -fuzz=FuzzRepair -fuzztime=10s ./internal/fault/

# Static analysis: formatting, go vet, and the repository's custom
# analyzers (tools/analyzers: panicmsg, exitcheck).
lint: vet
	@unformatted="$$(gofmt -l .)"; if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) run ./tools/analyzers ./...

# The CI gate: static checks plus the full suite under the race detector.
check: lint race
