GO ?= go

.PHONY: build test vet race fuzz lint lint-baseline check alloc bench bench-parallel bench-multilevel cover smoke-serve bench-serve chaos smoke-cluster

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over every fuzz target (seed corpus + 10s each).
# Go runs one -fuzz pattern per invocation, so the targets are looped.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run=FuzzRepair -fuzz=FuzzRepair -fuzztime=$(FUZZTIME) ./internal/fault/
	$(GO) test -run=FuzzLaRCSParse -fuzz=FuzzLaRCSParse -fuzztime=$(FUZZTIME) ./internal/larcs/
	$(GO) test -run=FuzzVerifyMapping -fuzz=FuzzVerifyMapping -fuzztime=$(FUZZTIME) ./internal/check/
	$(GO) test -run=FuzzCSRRoundTrip -fuzz=FuzzCSRRoundTrip -fuzztime=$(FUZZTIME) ./internal/graph/
	$(GO) test -run=FuzzCoarsen -fuzz=FuzzCoarsen -fuzztime=$(FUZZTIME) ./internal/multilevel/

# Static analysis: formatting, go vet, and oregami-lint
# (tools/analyzers) against the checked-in baseline — pre-existing
# accepted findings pass, anything new fails. See docs/ANALYSIS.md.
LINT_BASELINE := tools/analyzers/lint.baseline
lint: vet
	@unformatted="$$(gofmt -l .)"; if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) run ./tools/analyzers -baseline $(LINT_BASELINE) ./...

# Regenerate the lint baseline after triage. Justifications of entries
# that still match are preserved; new entries get a TODO placeholder
# that `make lint` rejects until a human writes the justification.
lint-baseline:
	$(GO) run ./tools/analyzers -write-baseline $(LINT_BASELINE) ./...

# Allocation-budget gates (alloc_test.go): hot-path allocs/op ceilings
# over the parallel-bench workload. A separate non-race pass — the gates
# skip themselves under the race detector, whose instrumentation
# allocates. See docs/TESTING.md.
alloc:
	$(GO) test -count=1 -run='TestAllocBudget' .

# The CI gate: static checks, the full suite under the race detector,
# and the allocation budgets.
check: lint race alloc

# Run the root-package benchmarks and archive them as machine-readable
# JSON (tools/benchjson). BENCHTIME=1x keeps the default pass quick;
# override for stable numbers, e.g. `make bench BENCHTIME=1s`.
BENCHTIME ?= 1x
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) . | tee BENCH_pipeline.txt
	$(GO) run ./tools/benchjson BENCH_pipeline.txt > BENCH_pipeline.json
	@echo "wrote BENCH_pipeline.json"

# Sequential-vs-parallel pipeline benchmark (docs/PARALLEL.md): the
# workers=N sub-benchmarks carry a "speedup" metric against workers=1.
# Meaningful speedups need a multicore machine (CI) — at GOMAXPROCS=1
# the speedup is honestly ~1x. PARBENCHTIME pins multiple iterations so
# single-iteration timer noise cannot masquerade as a speedup, and the
# run is gated against the committed BENCH_parallel.json: more than 10%
# allocs/op growth on any sub-benchmark fails (tools/benchjson
# -baseline). The fresh numbers land in BENCH_parallel.new.json; promote
# them over the baseline deliberately, not by running the target.
PARBENCHTIME ?= 5x
bench-parallel:
	$(GO) test -run='^$$' -bench=BenchmarkParallelPipeline -benchmem -benchtime=$(PARBENCHTIME) -count=1 . | tee BENCH_parallel.txt
	$(GO) run ./tools/benchjson -baseline BENCH_parallel.json BENCH_parallel.txt > BENCH_parallel.new.json
	@echo "wrote BENCH_parallel.new.json (baseline BENCH_parallel.json unchanged)"

# Multilevel scale benchmark (docs/MULTILEVEL.md): coarsen/map/uncoarsen
# and the recursive-bisection baseline at 1e5 and 1e6 tasks onto the
# 512-PE hierarchy, archived as benchjson. While the committed
# BENCH_multilevel.json baseline exists the run is gated against it
# (>10% allocs/op growth on any sub-benchmark fails) and the fresh
# numbers land in BENCH_multilevel.new.json; without a baseline the
# target writes BENCH_multilevel.json directly so it can be committed.
MLBENCHTIME ?= 1x
bench-multilevel:
	$(GO) test -run='^$$' -bench='BenchmarkMultilevel|BenchmarkRecursiveBisection' \
		-benchmem -benchtime=$(MLBENCHTIME) -count=1 -timeout=30m . | tee BENCH_multilevel.txt
	@if [ -f BENCH_multilevel.json ]; then \
		$(GO) run ./tools/benchjson -baseline BENCH_multilevel.json BENCH_multilevel.txt > BENCH_multilevel.new.json && \
		echo "wrote BENCH_multilevel.new.json (baseline BENCH_multilevel.json unchanged)"; \
	else \
		$(GO) run ./tools/benchjson BENCH_multilevel.txt > BENCH_multilevel.json && \
		echo "wrote BENCH_multilevel.json (new baseline — commit it with git add -f)"; \
	fi

# End-to-end smoke test of the mapping daemon: build, serve on a random
# port, cold-then-warm /v1/map (miss then hit), graceful SIGTERM drain.
smoke-serve:
	sh tools/serve_smoke.sh

# Benchmark the daemon with the closed-loop load generator: spawns its
# own server, runs a cold (cache-bypass) and warm (cache-hit) phase, and
# writes latency percentiles + throughput + hit ratio as benchjson-shaped
# JSON. The binary lands in a BENCH_*.tmp path so git ignores it.
SERVE_N ?= 200
SERVE_C ?= 8
bench-serve:
	$(GO) build -o BENCH_oregami.tmp ./cmd/oregami
	$(GO) run ./tools/loadgen -launch ./BENCH_oregami.tmp -n $(SERVE_N) -c $(SERVE_C) -out BENCH_serve.json
	@rm -f BENCH_oregami.tmp
	@echo "wrote BENCH_serve.json"

# Kill-driven crash-safety harness (docs/PERSIST.md): launch the daemon
# with a persistent state dir, populate + persist the cache, SIGKILL it
# mid-write under load, restart on the same port, and fail unless the
# recovered server serves >= 0.9x the pre-kill warm hit ratio with zero
# fingerprint changes. Writes recovery time and window p99 to
# BENCH_restart.json.
CHAOS_N ?= 60
CHAOS_C ?= 4
chaos:
	$(GO) build -o BENCH_oregami.tmp ./cmd/oregami
	$(GO) run ./tools/loadgen -chaos -launch ./BENCH_oregami.tmp \
		-n $(CHAOS_N) -c $(CHAOS_C) -kill-after 400ms -window 3s \
		-out BENCH_restart.json
	@rm -f BENCH_oregami.tmp
	@echo "wrote BENCH_restart.json"

# Cluster smoke (docs/SERVE.md "Cluster mode"): three serve nodes under
# consistent-hash sharding, load rotated across all of them so non-owners
# proxy, one node SIGKILLed mid-window. Fails on any fingerprint drift,
# any error while degraded, or a run with zero cross-node cache hits.
# Writes aggregate rps / cross-node hit ratio / p99 under the kill to
# BENCH_cluster.json.
CLUSTER_NODES ?= 3
CLUSTER_N ?= 120
CLUSTER_C ?= 6
smoke-cluster:
	$(GO) build -o BENCH_oregami.tmp ./cmd/oregami
	$(GO) run ./tools/loadgen -cluster $(CLUSTER_NODES) -launch ./BENCH_oregami.tmp \
		-n $(CLUSTER_N) -c $(CLUSTER_C) -kill-after 500ms -window 3s \
		-out BENCH_cluster.json
	@rm -f BENCH_oregami.tmp
	@echo "wrote BENCH_cluster.json"

# Coverage gate: the total statement coverage must not drop below the
# recorded floor (the pre-oracle-PR baseline).
COVER_FLOOR ?= 79.9
cover:
	$(GO) test -count=1 -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$NF); print $$NF }'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t + 0 < f + 0) ? 1 : 0 }' || \
		{ echo "coverage regression: $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }
