GO ?= go

.PHONY: build test vet race fuzz check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the repair invariants (seed corpus + 10s).
fuzz:
	$(GO) test -run=FuzzRepair -fuzz=FuzzRepair -fuzztime=10s ./internal/fault/

# The CI gate: static checks plus the full suite under the race detector.
check: vet race
