package oregami

// Allocation-budget gates for the hot paths flattened onto the CSR core
// (ROADMAP item 1). Each gate pins a testing.AllocsPerRun ceiling on one
// pipeline stage over the standard parallel-bench workload (160 tasks,
// 8 phases, hypercube(4)); regressions that reintroduce per-call maps or
// per-iteration slices trip the gate long before they show up in a
// wall-clock benchmark. Ceilings are ~2x the measured value on a warm
// run — loose enough to absorb allocator noise, tight enough that a
// reintroduced O(edges) or O(rounds) allocation pattern fails.
//
// The gates are skipped under the race detector (instrumentation
// allocates) and in -short mode; `make check` runs them in a dedicated
// non-race pass.

import (
	"testing"

	"oregami/internal/contract"
	"oregami/internal/core"
	"oregami/internal/gen"
	"oregami/internal/larcs"
	"oregami/internal/metrics"
	"oregami/internal/multilevel"
	"oregami/internal/route"
	"oregami/internal/topology"
)

// allocWorkload is the BenchmarkParallelPipeline workload: large enough
// that per-edge or per-round allocation patterns dominate the count.
func allocWorkload(t testing.TB) (*larcs.Compiled, *topology.Network) {
	g := gen.TaskGraph(gen.Rand(7), gen.GraphSize{Tasks: 160, Phases: 8, Density: 0.15, MaxWeight: 8})
	return &larcs.Compiled{Program: &larcs.Program{Name: g.Name}, Graph: g}, topology.Hypercube(4)
}

// gate runs fn under testing.AllocsPerRun and fails if the average
// allocation count exceeds ceiling.
func gate(t *testing.T, name string, ceiling float64, fn func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation budgets are not meaningful under the race detector")
	}
	if testing.Short() {
		t.Skip("allocation gates skipped in -short mode")
	}
	got := testing.AllocsPerRun(10, fn)
	t.Logf("%s: %.0f allocs/op (ceiling %.0f)", name, got, ceiling)
	if got > ceiling {
		t.Errorf("%s allocates %.0f times per op, budget is %.0f — a map or per-call buffer came back; see internal/graph/scratch.go",
			name, got, ceiling)
	}
}

func TestAllocBudgetGraphBuild(t *testing.T) {
	gate(t, "graph build + CSR warm", 700, func() {
		g := gen.TaskGraph(gen.Rand(7), gen.GraphSize{Tasks: 160, Phases: 8, Density: 0.15, MaxWeight: 8})
		g.WarmCSR()
	})
}

func TestAllocBudgetCollapsedEntries(t *testing.T) {
	c, _ := allocWorkload(t)
	c.Graph.WarmCSR()
	gate(t, "CollapsedEntries(1)", 8, func() {
		if len(c.Graph.CollapsedEntries(1)) == 0 {
			t.Fatal("no entries")
		}
	})
}

func TestAllocBudgetContract(t *testing.T) {
	c, net := allocWorkload(t)
	c.Graph.WarmCSR()
	opt := contract.Options{Processors: net.N, Parallelism: 1}
	gate(t, "MWMContract", 900, func() {
		if _, err := contract.MWMContract(c.Graph, opt); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocBudgetRoute(t *testing.T) {
	_, net := allocWorkload(t)
	net.WarmDistances()
	r := gen.Rand(11)
	pairs := make([][2]int, 96)
	for i := range pairs {
		pairs[i] = [2]int{r.Intn(net.N), r.Intn(net.N)}
	}
	gate(t, "MMRoute", 48, func() {
		if _, _, err := route.MMRoute(net, pairs, route.Options{}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocBudgetMetrics(t *testing.T) {
	c, net := allocWorkload(t)
	res, err := core.Map(core.Request{Compiled: c, Net: net, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	gate(t, "metrics.ComputeN", 20, func() {
		if _, err := metrics.ComputeN(res.Mapping, 1); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocBudgetMultilevelContract(t *testing.T) {
	g := gen.TaskGraph(gen.Rand(7), gen.GraphSize{Tasks: 2000, Phases: 4, Density: 0.01, MaxWeight: 8})
	g.WarmCSR()
	opt := multilevel.Options{Processors: 64, Parallelism: 1}
	if _, _, err := multilevel.Contract(g, opt); err != nil {
		t.Fatal(err)
	}
	// Coarsening allocates a fixed handful of slices per level (CSR
	// quadruple + cmap + members), the level count is logarithmic in the
	// task count, and the coarsest-level MWMContract runs on a
	// fixed-size (<= max(64, 2P)-vertex) graph — so the budget stays
	// flat as fine graphs grow. A per-fine-vertex or per-edge
	// allocation pattern would blow through it immediately at 2000
	// tasks.
	gate(t, "multilevel.Contract", 5500, func() {
		if _, _, err := multilevel.Contract(g, opt); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocBudgetPipeline(t *testing.T) {
	c, net := allocWorkload(t)
	if _, err := core.Map(core.Request{Compiled: c, Net: net, Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	// The committed BENCH_parallel.json baseline was ~27.7M allocs/op
	// before the CSR core; the gate holds the full pipeline to under
	// 1/1000th of that.
	gate(t, "core.Map pipeline", 9000, func() {
		if _, err := core.Map(core.Request{Compiled: c, Net: net, Parallelism: 1}); err != nil {
			t.Fatal(err)
		}
	})
}
